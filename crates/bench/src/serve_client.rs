//! A minimal client for the `disc-serve` wire protocol, plus a
//! multi-client load generator.
//!
//! [`ServeClient`] speaks the newline-delimited JSON protocol over one
//! TCP connection: one request line out, one response line back.
//! [`run_load`] drives N concurrent clients of randomized ingest bursts
//! against a server and accounts for every batch — acknowledged,
//! refused `overloaded`, or failed — so a harness can assert the
//! server's durability contract (acked rows survive a shutdown)
//! without trusting the server's own bookkeeping.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use disc_distance::Value;
use disc_serve::json::{self, Json};
use disc_serve::protocol::values_array;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One connection to a `disc-serve` server.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
}

/// What became of one ingest request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestOutcome {
    /// The batch was applied (and, on a durable server, WAL-fsynced).
    Acked {
        /// Engine generation the batch became.
        generation: u64,
    },
    /// Admission control refused the batch: the write queue was full.
    /// Nothing was applied; the client may retry.
    Overloaded,
    /// Any other typed failure (`rejected`, `io`, `shutting_down`, …).
    Failed {
        /// The wire error kind.
        kind: String,
        /// Human-readable detail.
        message: String,
    },
}

impl ServeClient {
    /// Connects to `addr` (e.g. `127.0.0.1:4000`).
    pub fn connect(addr: &str) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServeClient {
            reader: BufReader::new(stream),
        })
    }

    /// Sends one raw request line and returns the raw response line.
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        let stream = self.reader.get_mut();
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_string())
    }

    /// Sends one ingest batch and decodes the acknowledgement.
    pub fn ingest(&mut self, rows: &[Vec<Value>]) -> io::Result<IngestOutcome> {
        let response = self.request(&ingest_line(rows))?;
        let doc = json::parse(&response).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}"))
        })?;
        if doc.get("ok") == Some(&Json::Bool(true)) {
            let generation = doc
                .get("generation")
                .and_then(Json::as_usize)
                .ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "ack without generation")
                })? as u64;
            return Ok(IngestOutcome::Acked { generation });
        }
        let error = doc.get("error");
        let field = |name: &str| {
            error
                .and_then(|e| e.get(name))
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string()
        };
        let kind = field("kind");
        if kind == "overloaded" {
            return Ok(IngestOutcome::Overloaded);
        }
        Ok(IngestOutcome::Failed {
            kind,
            message: field("message"),
        })
    }

    /// Sends a bare read verb (`report`, `stats`, or `snapshot`) and
    /// returns the generation the response names plus the raw line.
    /// Every serve read carries the generation of the published image
    /// it describes; a response without one is a protocol error here.
    pub fn read_at(&mut self, op: &str) -> io::Result<(u64, String)> {
        let line = self.request(&format!(r#"{{"op":"{op}"}}"#))?;
        let doc = json::parse(&line).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}"))
        })?;
        if doc.get("ok") != Some(&Json::Bool(true)) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{op} refused: {line}"),
            ));
        }
        let generation = doc
            .get("generation")
            .and_then(Json::as_u64)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{op} response without a generation: {line}"),
                )
            })?;
        Ok((generation, line))
    }

    /// Polls `report` until the served generation reaches `generation`
    /// or `timeout` elapses. Acks precede state publication (and a
    /// replica applies asynchronously), so read-your-writes is a
    /// bounded wait, not an instant assertion. Returns the generation
    /// finally observed.
    pub fn await_generation(&mut self, generation: u64, timeout: Duration) -> io::Result<u64> {
        let deadline = Instant::now() + timeout;
        loop {
            let (observed, _) = self.read_at("report")?;
            if observed >= generation {
                return Ok(observed);
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("server stuck at generation {observed}, wanted {generation}"),
                ));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Asks the server to begin graceful shutdown.
    pub fn shutdown(&mut self) -> io::Result<String> {
        self.request(r#"{"op":"shutdown"}"#)
    }
}

/// Renders an ingest request line for `rows`.
pub fn ingest_line(rows: &[Vec<Value>]) -> String {
    let mut out = String::from(r#"{"op":"ingest","rows":["#);
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&values_array(row));
    }
    out.push_str("]}");
    out
}

/// Aggregate accounting from [`run_load`], summed over every client.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadReport {
    /// Batches acknowledged by the server.
    pub acked_batches: u64,
    /// Rows inside those acknowledged batches — a durable server must
    /// still hold exactly these rows after shutdown + recovery.
    pub acked_rows: u64,
    /// Batches refused by admission control (not applied, not retried).
    pub overloaded: u64,
    /// Connection failures and non-overload errors.
    pub errors: u64,
    /// Round-trip wall time, in milliseconds, of every ingest request
    /// the server answered (acked or overloaded), across all clients.
    /// Unordered — concurrent clients interleave.
    pub latencies_ms: Vec<f64>,
    /// Reads mirrored to the follower (mirror mode only).
    pub replica_reads: u64,
    /// Mirrored read pairs captured at an identical generation and
    /// compared byte for byte.
    pub divergence_checks: u64,
    /// Compared pairs whose response lines differed. Any nonzero value
    /// breaks the replication contract: a replica at generation `g`
    /// must serve the leader's exact bytes at `g`.
    pub divergent: u64,
    /// Round-trip wall time, in milliseconds, of every mirrored
    /// follower read, across all clients.
    pub replica_latencies_ms: Vec<f64>,
}

/// Nearest-rank `p`-th percentile (0 < p ≤ 100); `None` when empty.
/// NaN-free by construction, ordered with [`f64::total_cmp`].
fn nearest_rank(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

impl LoadReport {
    /// The nearest-rank `p`-th percentile of the answered ingest
    /// latencies; `None` when nothing was measured.
    pub fn percentile_ms(&self, p: f64) -> Option<f64> {
        nearest_rank(&self.latencies_ms, p)
    }

    /// Median answered-request latency in milliseconds.
    pub fn p50_ms(&self) -> Option<f64> {
        self.percentile_ms(50.0)
    }

    /// 99th-percentile answered-request latency in milliseconds.
    pub fn p99_ms(&self) -> Option<f64> {
        self.percentile_ms(99.0)
    }

    /// The nearest-rank `p`-th percentile of the mirrored follower
    /// read latencies; `None` outside mirror mode.
    pub fn replica_percentile_ms(&self, p: f64) -> Option<f64> {
        nearest_rank(&self.replica_latencies_ms, p)
    }

    /// Median mirrored follower read latency in milliseconds.
    pub fn replica_p50_ms(&self) -> Option<f64> {
        self.replica_percentile_ms(50.0)
    }

    /// 99th-percentile mirrored follower read latency in milliseconds.
    pub fn replica_p99_ms(&self) -> Option<f64> {
        self.replica_percentile_ms(99.0)
    }
}

/// How long a post-load generation wait may take before it counts as
/// an error: generous, because CI machines stall under parallel load.
const CATCH_UP_TIMEOUT: Duration = Duration::from_secs(60);

/// Drives `clients` concurrent connections, each sending `batches`
/// randomized ingest bursts of 1–`max_rows` clustered rows (arity 2).
/// Deterministic for a fixed `seed` modulo server-side interleaving.
///
/// After its batches, every client closes the read-your-writes loop
/// against the leader: it waits (bounded) for the served generation to
/// reach its last ack, then requires `stats` and `snapshot` to name a
/// generation at least that new — a response without a generation, or
/// behind the ack, counts as an error.
///
/// With `follower` set, every client additionally mirrors reads to the
/// replica at `follower`: one timed `report` per acked batch while the
/// load runs, then a catch-up wait to its last acked generation and a
/// byte-for-byte `report`/`stats`/`snapshot` comparison against the
/// leader pinned at an identical generation (`stats` compares only the
/// generation — its counters are process-local by design). Divergent
/// pairs are counted in [`LoadReport::divergent`].
pub fn run_load(
    addr: &str,
    follower: Option<&str>,
    clients: usize,
    batches: usize,
    max_rows: usize,
    seed: u64,
) -> LoadReport {
    let totals = Mutex::new(LoadReport::default());
    std::thread::scope(|scope| {
        for client in 0..clients {
            let totals = &totals;
            scope.spawn(move || {
                let mut local = LoadReport::default();
                let mut rng = StdRng::seed_from_u64(seed ^ (client as u64).wrapping_mul(0x9E37));
                match ServeClient::connect(addr) {
                    Ok(mut conn) => {
                        let mut replica = match follower.map(ServeClient::connect) {
                            Some(Ok(replica)) => Some(replica),
                            Some(Err(_)) => {
                                local.errors += 1;
                                None
                            }
                            None => None,
                        };
                        let mut last_acked = None;
                        for _ in 0..batches {
                            let size = rng.random_range(1..=max_rows.max(1));
                            let rows: Vec<Vec<Value>> = (0..size)
                                .map(|_| {
                                    let i = rng.random_range(0..6u32);
                                    let j = rng.random_range(0..6u32);
                                    vec![
                                        Value::Num(0.2 * f64::from(i)),
                                        Value::Num(0.2 * f64::from(j)),
                                    ]
                                })
                                .collect();
                            let sent = Instant::now();
                            let outcome = conn.ingest(&rows);
                            let elapsed_ms = sent.elapsed().as_secs_f64() * 1e3;
                            match outcome {
                                Ok(IngestOutcome::Acked { generation }) => {
                                    local.acked_batches += 1;
                                    local.acked_rows += rows.len() as u64;
                                    local.latencies_ms.push(elapsed_ms);
                                    last_acked = Some(generation);
                                    // Mirror one read into the replica
                                    // while the stream is hot; lag is
                                    // fine here, divergence is judged
                                    // after catch-up below.
                                    if let Some(replica) = replica.as_mut() {
                                        if timed_read(replica, "report", &mut local).is_err() {
                                            local.errors += 1;
                                        }
                                    }
                                }
                                Ok(IngestOutcome::Overloaded) => {
                                    local.overloaded += 1;
                                    local.latencies_ms.push(elapsed_ms);
                                }
                                Ok(IngestOutcome::Failed { .. }) | Err(_) => local.errors += 1,
                            }
                        }
                        if let Some(acked) = last_acked {
                            if read_your_writes(&mut conn, acked).is_err() {
                                local.errors += 1;
                            }
                            if let Some(replica) = replica.as_mut() {
                                if mirror_verify(&mut conn, replica, acked, &mut local).is_err() {
                                    local.errors += 1;
                                }
                            }
                        }
                    }
                    Err(_) => local.errors += batches as u64,
                }
                let mut t = totals.lock().unwrap();
                t.acked_batches += local.acked_batches;
                t.acked_rows += local.acked_rows;
                t.overloaded += local.overloaded;
                t.errors += local.errors;
                t.latencies_ms.extend(local.latencies_ms);
                t.replica_reads += local.replica_reads;
                t.divergence_checks += local.divergence_checks;
                t.divergent += local.divergent;
                t.replica_latencies_ms.extend(local.replica_latencies_ms);
            });
        }
    });
    totals.into_inner().unwrap()
}

/// One mirrored follower read, timed into the replica latency pool.
fn timed_read(
    replica: &mut ServeClient,
    op: &str,
    totals: &mut LoadReport,
) -> io::Result<(u64, String)> {
    let sent = Instant::now();
    let read = replica.read_at(op)?;
    totals
        .replica_latencies_ms
        .push(sent.elapsed().as_secs_f64() * 1e3);
    totals.replica_reads += 1;
    Ok(read)
}

/// The leader half of read-your-writes: wait (acks precede state
/// publication) until the served generation reaches this client's last
/// ack, then require every read verb to name a generation at least
/// that new.
fn read_your_writes(conn: &mut ServeClient, acked: u64) -> io::Result<()> {
    conn.await_generation(acked, CATCH_UP_TIMEOUT)?;
    for op in ["stats", "snapshot"] {
        let (generation, line) = conn.read_at(op)?;
        if generation < acked {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{op} went backwards: generation {generation} after ack {acked}: {line}"),
            ));
        }
    }
    Ok(())
}

/// The replica half: wait for the follower to apply this client's last
/// acked generation, then compare each read verb against the leader at
/// an identical generation. Other clients may still be writing, so the
/// pinning retries until a pair aligns; once the stream quiesces the
/// first try aligns.
fn mirror_verify(
    leader: &mut ServeClient,
    replica: &mut ServeClient,
    acked: u64,
    totals: &mut LoadReport,
) -> io::Result<()> {
    let deadline = Instant::now() + CATCH_UP_TIMEOUT;
    loop {
        let (generation, _) = timed_read(replica, "report", totals)?;
        if generation >= acked {
            break;
        }
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("replica stuck at generation {generation}, wanted {acked}"),
            ));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    for op in ["report", "stats", "snapshot"] {
        loop {
            let (leader_generation, leader_line) = leader.read_at(op)?;
            let (generation, line) = timed_read(replica, op, totals)?;
            if generation == leader_generation {
                totals.divergence_checks += 1;
                // `stats` counters are process-local (queue depths,
                // latency histograms); only state-derived responses
                // must be byte-equal at an equal generation.
                if op != "stats" && line != leader_line {
                    totals.divergent += 1;
                }
                break;
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("never pinned {op} to one generation under churn"),
                ));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let report = LoadReport {
            latencies_ms: vec![5.0, 1.0, 3.0, 2.0, 4.0],
            ..LoadReport::default()
        };
        // Nearest rank over the sorted [1, 2, 3, 4, 5]: ⌈0.5·5⌉ = 3rd
        // and ⌈0.99·5⌉ = 5th values.
        assert_eq!(report.p50_ms(), Some(3.0));
        assert_eq!(report.p99_ms(), Some(5.0));
        assert_eq!(report.percentile_ms(100.0), Some(5.0));
        assert_eq!(LoadReport::default().p50_ms(), None);
    }

    #[test]
    fn ingest_line_shape() {
        let rows = vec![
            vec![Value::Num(1.0), Value::Num(2.5)],
            vec![Value::Text("x".into()), Value::Null],
        ];
        assert_eq!(
            ingest_line(&rows),
            r#"{"op":"ingest","rows":[[1,2.5],["x",null]]}"#
        );
    }
}
