//! Table 5: decision-tree classification (5-fold CV) over raw data vs
//! data repaired by each method — outlier saving also helps training.

use disc_data::paper;
use disc_distance::Norm;
use disc_ml::{cross_validate, TreeConfig};

use crate::suite::{best_constraints, repair_dataset, repairer_lineup};
use crate::table::{f4, Table};

/// Runs the Table 5 reproduction at scale `frac` (the seven classification
/// datasets; GPS is excluded, matching the paper).
pub fn run(frac: f64, seed: u64) -> String {
    let datasets: Vec<_> = paper::numeric_suite(frac, seed)
        .into_iter()
        .filter(|d| d.name != "GPS")
        .collect();
    let mut table = Table::new(vec![
        "Data",
        "Raw",
        "DISC",
        "DORC",
        "ERACER",
        "HoloClean",
        "Holistic",
    ]);
    for synth in &datasets {
        let ds = &synth.data;
        let dist = ds.schema().tuple_distance(Norm::L2);
        let c = best_constraints(ds, &dist);
        let lineup = repairer_lineup(c, &dist);
        let mut row = vec![synth.name.to_string()];
        for repairer in &lineup {
            let (repaired, _, _) = repair_dataset(ds, repairer.as_ref());
            let f1 = cross_validate(&repaired, 5, TreeConfig::default(), seed);
            row.push(f4(f1));
        }
        table.row(row);
    }
    format!(
        "Table 5 — decision-tree classification F1 (5-fold CV) over raw / repaired data\n\
         (scale frac={frac}, seed={seed})\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_seven_datasets_without_gps() {
        let out = run(0.01, 4);
        assert!(out.contains("Spam"));
        assert!(!out.contains("GPS"));
        assert!(out.contains("HoloClean"));
    }
}
