//! Figure 9: accuracy of attribute adjustment / explanation on the GPS
//! trajectory dataset — (a) the dirty vs natural outlier rates and how
//! many of each DISC saves, and (b) the Jaccard index between the
//! ground-truth erroneous attributes `T` and the attributes `P` adjusted
//! by each method (or flagged by the SSE explainer).

use disc_cleaning::Sse;
use disc_core::detect_outliers;
use disc_data::{paper, OutlierKind};
use disc_distance::Norm;
use disc_metrics::jaccard;

use crate::suite::{best_constraints, repair_dataset, repairer_lineup};
use crate::table::{f4, Table};

/// Runs the Figure 9 reproduction at scale `frac`.
pub fn run(frac: f64, seed: u64) -> String {
    let synth = paper::gps(frac, seed);
    let ds = &synth.data;
    let dist = ds.schema().tuple_distance(Norm::L2);
    let c = best_constraints(ds, &dist);
    let kinds = synth.log.kinds(ds.len());
    let dirty = kinds.iter().filter(|k| **k == OutlierKind::Dirty).count();
    let natural = kinds.iter().filter(|k| **k == OutlierKind::Natural).count();

    // (a) outlier rates.
    let mut rates = Table::new(vec!["Kind", "Count", "Rate"]);
    rates.row(vec![
        "dirty".to_string(),
        dirty.to_string(),
        f4(dirty as f64 / ds.len() as f64),
    ]);
    rates.row(vec![
        "natural".to_string(),
        natural.to_string(),
        f4(natural as f64 / ds.len() as f64),
    ]);

    // (b) Jaccard(T, P) per method, averaged over the dirty outliers.
    let mut jac = Table::new(vec!["Method", "Jaccard(T,P)", "avg |P|", "rows touched"]);
    let lineup = repairer_lineup(c, &dist);
    for repairer in lineup.iter().skip(1) {
        let (_, report, _) = repair_dataset(ds, repairer.as_ref());
        let mut scores = Vec::new();
        let mut sizes = Vec::new();
        for e in &synth.log.errors {
            let truth: Vec<usize> = e.attrs.iter().collect();
            let adjusted: Vec<usize> = report
                .attrs_of(e.row)
                .map(|a| a.iter().collect())
                .unwrap_or_default();
            scores.push(jaccard(&truth, &adjusted));
            if !adjusted.is_empty() {
                sizes.push(adjusted.len() as f64);
            }
        }
        let avg = scores.iter().sum::<f64>() / scores.len().max(1) as f64;
        let avg_size = sizes.iter().sum::<f64>() / sizes.len().max(1) as f64;
        jac.row(vec![
            repairer.name().to_string(),
            f4(avg),
            f4(avg_size),
            report.rows_modified().to_string(),
        ]);
    }
    // SSE explains the detected outliers (it does not repair).
    let split = detect_outliers(ds.rows(), &dist, c);
    let inliers: Vec<_> = split
        .inliers
        .iter()
        .map(|&i| ds.rows()[i].clone())
        .collect();
    let sse = Sse::new();
    let mut scores = Vec::new();
    let mut sizes = Vec::new();
    for e in &synth.log.errors {
        let truth: Vec<usize> = e.attrs.iter().collect();
        let explained: Vec<usize> = sse.explain(&inliers, ds.row(e.row)).iter().collect();
        scores.push(jaccard(&truth, &explained));
        if !explained.is_empty() {
            sizes.push(explained.len() as f64);
        }
    }
    jac.row(vec![
        "SSE".to_string(),
        f4(scores.iter().sum::<f64>() / scores.len().max(1) as f64),
        f4(sizes.iter().sum::<f64>() / sizes.len().max(1) as f64),
        scores.len().to_string(),
    ]);

    format!(
        "Figure 9 — GPS-like attribute adjustment/explanation accuracy\n\
         (n={}, m=3, ε={:.2}, η={}, scale frac={frac}, seed={seed})\n\n\
         (a) outlier rates\n{}\n(b) Jaccard of adjusted/explained attributes vs ground truth\n{}",
        ds.len(),
        c.eps,
        c.eta,
        rates.render(),
        jac.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rates_and_jaccard() {
        let out = run(0.05, 7);
        assert!(out.contains("dirty"));
        assert!(out.contains("natural"));
        assert!(out.contains("SSE"));
        assert!(out.contains("Jaccard"));
    }
}
