//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro <experiment> [--frac F] [--seed S] [--full] [--workers N] [--deadline-ms MS]
//!                    [--stats PATH]
//!
//! experiments:
//!   table2 table3 table4 table5
//!   fig4 fig5 fig6 fig7 fig8 fig9 fig10
//!   ablation
//!   stream       (incremental engine vs per-batch rebuild;
//!                 `--stream-batches N` sets the micro-batch count)
//!   all          (everything, at the default scale)
//! ```
//!
//! `--frac` scales the synthetic Table 1 stand-ins (default 0.05 so the
//! whole suite runs in minutes); `--full` runs Figures 6/7 at paper scale;
//! `--workers N` pins the parallel save pipeline to N threads (`0` means
//! auto: one per core; results are identical for every worker count);
//! `--deadline-ms MS` budgets each `save_all` run to MS milliseconds of
//! wall clock — on expiry the pipeline degrades gracefully, reporting
//! untried outliers as skipped instead of running to completion (`0`
//! clears the budget); `--stats PATH` writes the process-wide
//! observability counters (index queries, search nodes, bound prunes, …)
//! as a `disc-stats/1` JSON document after the experiments finish — the
//! counters are deterministic, so two runs with the same seed and any
//! worker counts produce identical documents.
//!
//! Exit codes: `0` success, `2` unparseable flags or an unknown
//! experiment, `4` the stats file could not be written.

use std::env;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <table2|table3|table4|table5|fig4|fig5|fig6|fig7|fig8|fig9|fig10|ablation|stream|all> \
         [--frac F] [--seed S] [--full] [--workers N] [--deadline-ms MS] [--stream-batches N] [--stats PATH]\n\
         --workers 0 means auto (one per core); --deadline-ms 0 clears the deadline;\n\
         --stats PATH writes the observability counters as JSON after the run"
    );
    // Usage errors are parse failures: exit 2.
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let mut frac = 0.05f64;
    let mut seed = 42u64;
    let mut full = false;
    let mut stream_batches = 6usize;
    let mut stats_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--frac" => {
                i += 1;
                frac = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(f) if f > 0.0 && f <= 1.0 => f,
                    _ => {
                        eprintln!("--frac expects a number in (0, 1]");
                        return ExitCode::from(2);
                    }
                };
            }
            "--seed" => {
                i += 1;
                seed = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) => s,
                    None => {
                        eprintln!("--seed expects an integer");
                        return ExitCode::from(2);
                    }
                };
            }
            "--full" => full = true,
            "--workers" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    // 0 = auto: clear any override, use one worker per core.
                    Some(n) => disc_core::parallel::set_global_workers(n),
                    None => {
                        eprintln!("--workers expects an integer >= 0 (0 = auto)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--deadline-ms" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    // 0 clears the deadline; savers pick this up via
                    // Budget::auto() at construction time.
                    Some(ms) => disc_core::set_global_deadline_ms(ms),
                    None => {
                        eprintln!("--deadline-ms expects an integer >= 0 (0 = no deadline)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--stream-batches" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => stream_batches = n,
                    _ => {
                        eprintln!("--stream-batches expects an integer >= 1");
                        return ExitCode::from(2);
                    }
                }
            }
            "--stats" => {
                i += 1;
                match args.get(i) {
                    Some(path) => stats_path = Some(path.clone()),
                    None => {
                        eprintln!("--stats expects an output path");
                        return ExitCode::from(2);
                    }
                }
            }
            other => {
                eprintln!("unknown flag: {other}");
                return usage();
            }
        }
        i += 1;
    }

    let run_one = |name: &str| -> Option<String> {
        Some(match name {
            "table2" => disc_bench::table2::run(frac, seed),
            "table3" => disc_bench::table3::run(frac, seed),
            "table4" => disc_bench::table4::run(frac, seed),
            "table5" => disc_bench::table5::run(frac, seed),
            "fig4" => disc_bench::fig4::run(seed),
            "fig5" => disc_bench::fig5::run(frac, seed),
            "fig6" => disc_bench::fig6::run(full, seed),
            "fig7" => disc_bench::fig7::run(full, seed),
            "fig8" => disc_bench::fig8::run(1.0_f64.min(frac * 4.0), seed),
            "fig9" => disc_bench::fig9::run(1.0_f64.min(frac * 2.0), seed),
            "fig10" => disc_bench::fig10::run(seed),
            "ablation" => disc_bench::ablation::run(seed),
            "stream" => disc_bench::stream::run_with(frac, stream_batches, seed),
            _ => return None,
        })
    };

    let code = if cmd == "all" {
        for name in [
            "table2", "table3", "table4", "table5", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig10", "ablation", "stream",
        ] {
            println!("{}\n", run_one(name).expect("known experiment"));
        }
        ExitCode::SUCCESS
    } else {
        match run_one(cmd) {
            Some(out) => {
                println!("{out}");
                ExitCode::SUCCESS
            }
            None => return usage(),
        }
    };
    if let Some(path) = stats_path {
        let seed_s = seed.to_string();
        let frac_s = frac.to_string();
        let json = disc_obs::global_json(&[
            ("command", cmd.as_str()),
            ("seed", &seed_s),
            ("frac", &frac_s),
        ]);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write stats to {path}: {e}");
            // A stats write failure is an IO error: exit 4.
            return ExitCode::from(4);
        }
    }
    code
}
