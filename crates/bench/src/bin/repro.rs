//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro <experiment> [--frac F] [--seed S] [--full] [--workers N]
//!
//! experiments:
//!   table2 table3 table4 table5
//!   fig4 fig5 fig6 fig7 fig8 fig9 fig10
//!   ablation
//!   all          (everything, at the default scale)
//! ```
//!
//! `--frac` scales the synthetic Table 1 stand-ins (default 0.05 so the
//! whole suite runs in minutes); `--full` runs Figures 6/7 at paper scale;
//! `--workers N` pins the parallel save pipeline to N threads (default:
//! one per core; results are identical for every worker count).

use std::env;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <table2|table3|table4|table5|fig4|fig5|fig6|fig7|fig8|fig9|fig10|ablation|all> \
         [--frac F] [--seed S] [--full] [--workers N]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let mut frac = 0.05f64;
    let mut seed = 42u64;
    let mut full = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--frac" => {
                i += 1;
                frac = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(f) if f > 0.0 && f <= 1.0 => f,
                    _ => {
                        eprintln!("--frac expects a number in (0, 1]");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--seed" => {
                i += 1;
                seed = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) => s,
                    None => {
                        eprintln!("--seed expects an integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--full" => full = true,
            "--workers" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => disc_core::parallel::set_global_workers(n),
                    _ => {
                        eprintln!("--workers expects an integer >= 1");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!("unknown flag: {other}");
                return usage();
            }
        }
        i += 1;
    }

    let run_one = |name: &str| -> Option<String> {
        Some(match name {
            "table2" => disc_bench::table2::run(frac, seed),
            "table3" => disc_bench::table3::run(frac, seed),
            "table4" => disc_bench::table4::run(frac, seed),
            "table5" => disc_bench::table5::run(frac, seed),
            "fig4" => disc_bench::fig4::run(seed),
            "fig5" => disc_bench::fig5::run(frac, seed),
            "fig6" => disc_bench::fig6::run(full, seed),
            "fig7" => disc_bench::fig7::run(full, seed),
            "fig8" => disc_bench::fig8::run(1.0_f64.min(frac * 4.0), seed),
            "fig9" => disc_bench::fig9::run(1.0_f64.min(frac * 2.0), seed),
            "fig10" => disc_bench::fig10::run(seed),
            "ablation" => disc_bench::ablation::run(seed),
            _ => return None,
        })
    };

    if cmd == "all" {
        for name in [
            "table2", "table3", "table4", "table5", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig9", "fig10", "ablation",
        ] {
            println!("{}\n", run_one(name).expect("known experiment"));
        }
        ExitCode::SUCCESS
    } else {
        match run_one(cmd) {
            Some(out) => {
                println!("{out}");
                ExitCode::SUCCESS
            }
            None => usage(),
        }
    }
}
