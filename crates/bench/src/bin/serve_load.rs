//! Load generator for `disc serve`.
//!
//! ```text
//! serve_load --addr HOST:PORT [--follower HOST:PORT] [--clients 4]
//!            [--batches 8] [--rows 3] [--seed 7]
//! ```
//!
//! Drives `--clients` concurrent connections, each sending `--batches`
//! randomized ingest bursts of 1–`--rows` rows, then prints one
//! machine-readable accounting line:
//!
//! ```text
//! acked_batches=N acked_rows=N overloaded=K errors=0 p50_ms=M p99_ms=M
//! ```
//!
//! `p50_ms`/`p99_ms` are nearest-rank percentiles of the round-trip
//! time of every answered ingest (acked or overloaded), merged across
//! clients; both read `nan` when no request was answered. Every client
//! also closes the read-your-writes loop: after its last ack it waits
//! for the served generation to reach that ack and requires `report`,
//! `stats`, and `snapshot` to name it.
//!
//! With `--follower`, every client mirrors reads to the replica at
//! that address — timed `report`s while the stream is hot, then, after
//! the replica applies the client's last acked generation, a
//! byte-for-byte comparison of `report`/`snapshot` against the leader
//! pinned at an identical generation. The accounting line gains:
//!
//! ```text
//! … replica_reads=N divergence_checks=N divergent=0
//!   replica_p50_ms=M replica_p99_ms=M
//! ```
//!
//! A harness asserts the server's durability contract against it: after
//! a graceful shutdown, a recovered store must hold exactly
//! `acked_rows` rows. Exits 1 on any connection/protocol error or any
//! divergent mirrored read, 0 otherwise (overloads are expected under
//! pressure, not errors).

use std::collections::HashMap;
use std::process::ExitCode;

use disc_bench::serve_client::run_load;

fn main() -> ExitCode {
    let mut flags: HashMap<String, String> = HashMap::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            flags.insert(name.to_string(), it.next().unwrap_or_default());
        } else {
            eprintln!("unexpected argument {a:?}");
            return ExitCode::from(2);
        }
    }
    let num = |name: &str, default: u64| -> u64 {
        flags
            .get(name)
            .map(|s| s.parse().unwrap_or(default))
            .unwrap_or(default)
    };
    let Some(addr) = flags.get("addr") else {
        eprintln!(
            "usage: serve_load --addr HOST:PORT [--follower HOST:PORT] [--clients N] \
             [--batches N] [--rows N] [--seed N]"
        );
        return ExitCode::from(2);
    };
    let follower = flags.get("follower").map(String::as_str);

    let report = run_load(
        addr,
        follower,
        num("clients", 4) as usize,
        num("batches", 8) as usize,
        num("rows", 3) as usize,
        num("seed", 7),
    );
    print!(
        "acked_batches={} acked_rows={} overloaded={} errors={} p50_ms={:.3} p99_ms={:.3}",
        report.acked_batches,
        report.acked_rows,
        report.overloaded,
        report.errors,
        report.p50_ms().unwrap_or(f64::NAN),
        report.p99_ms().unwrap_or(f64::NAN)
    );
    if follower.is_some() {
        print!(
            " replica_reads={} divergence_checks={} divergent={} \
             replica_p50_ms={:.3} replica_p99_ms={:.3}",
            report.replica_reads,
            report.divergence_checks,
            report.divergent,
            report.replica_p50_ms().unwrap_or(f64::NAN),
            report.replica_p99_ms().unwrap_or(f64::NAN)
        );
    }
    println!();
    if report.errors > 0 || report.divergent > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
