//! Figure 4: clustering F1 / precision / recall of every method under a
//! sweep of the distance threshold ε (a) and the neighbor threshold η (b),
//! on a Letter-like workload (m = 16, n = 1000).
//!
//! The paper's absolute grid (ε around 3, η around 18) is tied to the real
//! Letter data; the synthetic stand-in sweeps multiplicative factors
//! around the Poisson-determined operating point, which preserves the
//! U-shape: too-small ε (or too-large η) over-changes, too-large ε (or
//! too-small η) misses the dirty outliers.

use disc_core::DistanceConstraints;
use disc_data::{ClusterSpec, ErrorInjector, SyntheticDataset};
use disc_distance::TupleDistance;

use crate::suite::{auto_constraints, repair_clone, repairer_lineup};
use crate::table::{f4, Table};

/// The Figure 4 workload: a 16-attribute, 1000-tuple clustered dataset
/// with injected 1–2-attribute errors.
pub fn workload(seed: u64) -> SyntheticDataset {
    let spec = ClusterSpec::new(1000, 16, 8, seed);
    SyntheticDataset::generate(
        "Letter-like",
        &spec,
        ErrorInjector::new(80, 16, seed ^ 0xF4),
    )
}

fn sweep(
    ds: &disc_data::Dataset,
    dist: &TupleDistance,
    points: &[DistanceConstraints],
    label: impl Fn(&DistanceConstraints) -> String,
) -> String {
    let mut f1 = Table::new(vec![
        "Setting",
        "Raw",
        "DISC",
        "DORC",
        "ERACER",
        "HoloClean",
        "Holistic",
    ]);
    let mut precision = f1.clone();
    let mut recall = f1.clone();
    for c in points {
        let lineup = repairer_lineup(*c, dist);
        let mut f1_row = vec![label(c)];
        let mut p_row = vec![label(c)];
        let mut r_row = vec![label(c)];
        for repairer in &lineup {
            let res = repair_clone(ds, repairer.as_ref(), *c, dist);
            f1_row.push(f4(res.scores.f1));
            p_row.push(f4(res.scores.precision));
            r_row.push(f4(res.scores.recall));
        }
        f1.row(f1_row);
        precision.row(p_row);
        recall.row(r_row);
    }
    format!(
        "F1-score\n{}\nPrecision\n{}\nRecall\n{}",
        f1.render(),
        precision.render(),
        recall.render()
    )
}

/// Runs the Figure 4 reproduction.
pub fn run(seed: u64) -> String {
    let synth = workload(seed);
    let ds = &synth.data;
    let dist = TupleDistance::numeric(ds.arity());
    let base = auto_constraints(ds, &dist);

    // (a) sweep ε at fixed η.
    let eps_points: Vec<DistanceConstraints> = [0.6, 0.8, 1.0, 1.2, 1.5]
        .iter()
        .map(|f| DistanceConstraints::new(base.eps * f, base.eta))
        .collect();
    let part_a = sweep(ds, &dist, &eps_points, |c| format!("ε={:.2}", c.eps));

    // (b) sweep η at fixed ε.
    let eta_points: Vec<DistanceConstraints> = [0.4, 0.7, 1.0, 1.5, 2.2]
        .iter()
        .map(|f| {
            DistanceConstraints::new(base.eps, ((base.eta as f64 * f).round() as usize).max(1))
        })
        .collect();
    let part_b = sweep(ds, &dist, &eta_points, |c| format!("η={}", c.eta));

    format!(
        "Figure 4 — clustering accuracy vs distance constraints (m=16, n=1000, seed={seed})\n\
         Operating point from Poisson determination: ε={:.2}, η={}\n\n\
         (a) varying ε at η={}\n{}\n(b) varying η at ε={:.2}\n{}",
        base.eps, base.eta, base.eta, part_a, base.eps, part_b
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shape() {
        let w = workload(9);
        assert_eq!(w.data.arity(), 16);
        assert!(w.data.len() >= 1000);
        assert_eq!(w.log.errors.len(), 80);
    }
}
