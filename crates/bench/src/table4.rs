//! Table 4: parameter determination — sampling rates, wall-clock time,
//! the `(ε, η)` chosen by the Poisson procedure (DISC) vs the
//! Normal-distribution baseline (DB) vs a grid-searched optimum, and the
//! downstream clustering F1 obtained with each choice.

use disc_cleaning::{DiscRepairer, Repairer};
use disc_clustering::{ClusteringAlgorithm, Dbscan};
use disc_core::{
    determine_parameters, determine_parameters_db, DistanceConstraints, ParamConfig, SaverConfig,
};
use disc_data::{paper, Dataset, SyntheticDataset};
use disc_distance::{Norm, TupleDistance};
use disc_metrics::pairwise_f1;

use crate::table::{f4, Table};

/// Clustering F1 obtained by repairing with DISC at `(ε, η)` and running
/// DBSCAN at the same constraints.
fn f1_with(ds: &Dataset, dist: &TupleDistance, eps: f64, eta: usize) -> f64 {
    if eps <= 0.0 {
        return 0.0;
    }
    let c = DistanceConstraints::new(eps, eta.max(1));
    let mut copy = ds.clone();
    DiscRepairer(
        SaverConfig::new(c, dist.clone())
            .kappa(2)
            .build_approx()
            .unwrap(),
    )
    .repair(&mut copy);
    let labels = Dbscan::new(c.eps, c.eta).cluster(copy.rows(), dist);
    pairwise_f1(&labels, ds.labels().expect("labels"))
}

/// Grid-searches `(ε, η)` around the Poisson choice for the best F1 — the
/// "Optimal" column found "by testing various ε and η combinations".
fn optimal(
    ds: &Dataset,
    dist: &TupleDistance,
    base_eps: f64,
    base_eta: usize,
) -> (f64, usize, f64) {
    let mut best = (base_eps, base_eta, f1_with(ds, dist, base_eps, base_eta));
    for fe in [0.75, 1.0, 1.25] {
        for de in [-4i64, 0, 4] {
            let eps = base_eps * fe;
            let eta = (base_eta as i64 + de).max(1) as usize;
            let f1 = f1_with(ds, dist, eps, eta);
            if f1 > best.2 {
                best = (eps, eta, f1);
            }
        }
    }
    best
}

fn rows_for(synth: &SyntheticDataset, rates: &[f64], table: &mut Table, seed: u64) {
    let ds = &synth.data;
    let dist = ds.schema().tuple_distance(Norm::L2);
    // The optimal is determined once on the full data.
    let full_cfg = ParamConfig {
        sample_rate: (2000.0 / ds.len() as f64).min(1.0),
        seed,
        ..Default::default()
    };
    let base = determine_parameters(ds.rows(), &dist, &full_cfg);
    let (oe, oh, of1) = optimal(ds, &dist, base.eps, base.eta);

    for &rate in rates {
        let cfg = ParamConfig {
            sample_rate: rate,
            seed,
            ..Default::default()
        };
        let disc = determine_parameters(ds.rows(), &dist, &cfg);
        let db = determine_parameters_db(ds.rows(), &dist, &cfg);
        let disc_f1 = f1_with(ds, &dist, disc.eps, disc.eta);
        let db_f1 = f1_with(ds, &dist, db.eps, db.eta);
        table.row(vec![
            synth.name.to_string(),
            format!("{:.1}%", rate * 100.0),
            format!("{}", (ds.len() as f64 * rate).round() as usize),
            format!("{:.3}", disc.elapsed.as_secs_f64()),
            format!("{:.3}", db.elapsed.as_secs_f64()),
            format!("{:.2}, {}", disc.eps, disc.eta),
            format!("{:.2}, {}", db.eps, db.eta),
            format!("{:.2}, {}", oe, oh),
            f4(disc_f1),
            f4(db_f1),
            f4(of1),
        ]);
    }
}

/// Runs the Table 4 reproduction at scale `frac`.
pub fn run(frac: f64, seed: u64) -> String {
    let mut table = Table::new(vec![
        "Data",
        "Rate",
        "Tuples",
        "Time DISC",
        "Time DB",
        "(ε,η) DISC",
        "(ε,η) DB",
        "(ε,η) Opt",
        "F1 DISC",
        "F1 DB",
        "F1 Opt",
    ]);
    let letter = paper::letter(frac, seed);
    rows_for(&letter, &[0.01, 0.1, 1.0], &mut table, seed);
    let flight = paper::flight(frac, seed + 1);
    rows_for(
        &flight,
        &[0.001_f64.max(200.0 / flight.data.len() as f64), 0.01, 1.0],
        &mut table,
        seed,
    );
    format!(
        "Table 4 — performance of parameter determination (scale frac={frac}, seed={seed})\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_letter_and_flight_rows() {
        let out = run(0.005, 3);
        assert!(out.contains("Letter"));
        assert!(out.contains("Flight"));
        assert!(out.contains("F1 DISC"));
    }
}
