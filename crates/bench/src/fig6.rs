//! Figure 6: scalability in the number of tuples `n` on a Flight-like
//! workload (m = 3) — clustering F1 and repair time for DISC, the Exact
//! enumeration, DORC, ERACER, HoloClean and Holistic. As in the paper,
//! DORC is cut off beyond a size threshold (it "cannot obtain a result in
//! more than one hour" past 50k tuples).

use disc_cleaning::ExactRepairer;
use disc_core::SaverConfig;
use disc_data::{ClusterSpec, ErrorInjector, SyntheticDataset};
use disc_distance::TupleDistance;

use crate::suite::{auto_constraints, repair_clone, repairer_lineup};
use crate::table::{f4, secs, Table};

/// Builds the Flight-like workload at size `n` (5 clusters, m = 3, 8%
/// dirty outliers — the outlier rate of Table 1's Flight row).
pub fn workload(n: usize, seed: u64) -> SyntheticDataset {
    let dirty = n / 12;
    let natural = n / 50;
    let spec = ClusterSpec::new(n - natural, 3, 5, seed);
    SyntheticDataset::generate(
        "Flight-like",
        &spec,
        ErrorInjector::new(dirty, natural, seed ^ 0xF6),
    )
}

/// Runs the Figure 6 reproduction. `full` extends the sweep to 200k
/// tuples; the default stops at 20k to keep the run interactive.
pub fn run(full: bool, seed: u64) -> String {
    let sizes: &[usize] = if full {
        &[2_000, 5_000, 10_000, 50_000, 100_000, 200_000]
    } else {
        &[1_000, 2_000, 5_000, 10_000, 20_000]
    };
    let dorc_cutoff = if full { 50_000 } else { 10_000 };
    // Exact enumerates d^m candidates per outlier, each with an O(n)
    // feasibility check — cap it early (the paper's point exactly).
    let exact_cutoff = if full { 10_000 } else { 2_000 };

    let mut f1 = Table::new(vec![
        "n",
        "DISC",
        "Exact",
        "DORC",
        "ERACER",
        "HoloClean",
        "Holistic",
    ]);
    let mut time = f1.clone();
    for &n in sizes {
        let synth = workload(n, seed);
        let ds = &synth.data;
        let dist = TupleDistance::numeric(3);
        let c = auto_constraints(ds, &dist);
        let mut f1_row = vec![n.to_string()];
        let mut t_row = vec![n.to_string()];

        // DISC + the cleaning baselines from the standard lineup.
        let lineup = repairer_lineup(c, &dist);
        let mut results = Vec::new();
        for repairer in lineup.iter().skip(1) {
            // Respect the paper's DORC cutoff on large n.
            if repairer.name() == "DORC" && n > dorc_cutoff {
                results.push(None);
                continue;
            }
            results.push(Some(repair_clone(ds, repairer.as_ref(), c, &dist)));
        }
        // Exact enumeration (domain-capped, as discussed in Section 2.3).
        let exact = if n <= exact_cutoff {
            let saver = SaverConfig::new(c, dist.clone())
                .domain_cap(Some(8))
                .build_exact()
                .unwrap();
            Some(repair_clone(ds, &ExactRepairer(saver), c, &dist))
        } else {
            None
        };

        // Column order: DISC, Exact, DORC, ERACER, HoloClean, Holistic.
        let ordered: Vec<Option<&crate::suite::MethodResult>> = vec![
            results[0].as_ref(),
            exact.as_ref(),
            results[1].as_ref(),
            results[2].as_ref(),
            results[3].as_ref(),
            results[4].as_ref(),
        ];
        for r in ordered {
            match r {
                Some(r) => {
                    f1_row.push(f4(r.scores.f1));
                    t_row.push(secs(r.repair_time));
                }
                None => {
                    f1_row.push("-".into());
                    t_row.push("DNF".into());
                }
            }
        }
        f1.row(f1_row);
        time.row(t_row);
    }
    format!(
        "Figure 6 — scalability in n (Flight-like, m=3, seed={seed}{})\n\n\
         (a) clustering F1\n{}\n(b) repair time (s)\n{}",
        if full { ", full sweep" } else { "" },
        f1.render(),
        time.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_scales() {
        let w = workload(500, 1);
        assert_eq!(w.data.arity(), 3);
        assert!(w.data.len() >= 500);
    }
}
