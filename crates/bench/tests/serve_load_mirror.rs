//! `run_load` in mirror mode against a real leader + replica pair: the
//! load generator must close the read-your-writes loop on the leader,
//! mirror reads to the replica, compare the pair at an identical
//! generation, and find zero divergence.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use disc_bench::serve_client::{run_load, ServeClient};
use disc_core::{DistanceConstraints, Saver, SaverConfig};
use disc_data::Schema;
use disc_distance::{TupleDistance, Value};
use disc_persist::{DurableEngine, StoreOptions};
use disc_replicate::{Follower, FollowerOptions, SaverFactory};
use disc_serve::{EngineBackend, Server, ServerConfig};

fn temp_store(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "disc_serve_load_mirror/{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn saver() -> Box<dyn Saver> {
    Box::new(
        SaverConfig::new(DistanceConstraints::new(0.5, 4), TupleDistance::numeric(2))
            .build_approx()
            .unwrap(),
    )
}

fn saver_factory() -> SaverFactory {
    Box::new(|_schema: &Schema, _config: &[u8]| Ok(saver()))
}

#[test]
fn mirrored_load_finds_no_divergence() {
    let leader_dir = temp_store("leader");
    let follower_dir = temp_store("follower");
    let store = DurableEngine::create(
        &leader_dir,
        Schema::numeric(2),
        saver(),
        Vec::new(),
        StoreOptions::default(),
    )
    .unwrap();
    let leader = Server::start(EngineBackend::Durable(store), ServerConfig::default()).unwrap();
    let leader_addr = leader.addr().to_string();

    // A little history before the replica exists.
    leader
        .ingest(vec![
            vec![Value::Num(0.1), Value::Num(0.1)],
            vec![Value::Num(0.15), Value::Num(0.12)],
        ])
        .unwrap();

    let follower = Follower::bootstrap(
        &follower_dir,
        leader_addr.clone(),
        saver_factory(),
        FollowerOptions {
            io_timeout: Duration::from_secs(10),
            ..FollowerOptions::default()
        },
    )
    .unwrap();
    let (replica, publisher) = Server::start_replica(
        follower.state(),
        leader_addr.clone(),
        ServerConfig::default(),
    )
    .unwrap();
    let replica_addr = replica.addr().to_string();
    let daemon = std::thread::spawn(move || follower.run(&publisher));

    let clients = 3;
    let report = run_load(&leader_addr, Some(&replica_addr), clients, 5, 3, 11);

    assert_eq!(report.errors, 0, "{report:?}");
    assert_eq!(report.divergent, 0, "{report:?}");
    assert_eq!(report.acked_batches, (clients * 5) as u64, "{report:?}");
    // One mirrored report per ack, plus catch-up polls and one
    // comparison read per verb per client.
    assert!(
        report.replica_reads >= report.acked_batches + (clients * 4) as u64,
        "{report:?}"
    );
    // Every client pinned report/stats/snapshot once.
    assert_eq!(report.divergence_checks, (clients * 3) as u64, "{report:?}");
    assert_eq!(
        report.replica_latencies_ms.len() as u64,
        report.replica_reads
    );
    assert!(report.replica_p50_ms().is_some());
    assert!(report.replica_p99_ms().unwrap() >= report.replica_p50_ms().unwrap());

    // The standalone read helpers: a fresh client observes the final
    // generation on both ends.
    let generation = leader.snapshot().generation;
    let mut conn = ServeClient::connect(&replica_addr).unwrap();
    let observed = conn
        .await_generation(generation, Duration::from_secs(30))
        .unwrap();
    assert!(observed >= generation);
    for op in ["report", "stats", "snapshot"] {
        let (g, _) = conn.read_at(op).unwrap();
        assert!(
            g >= generation,
            "{op} answered below generation {generation}"
        );
    }

    replica.request_shutdown();
    daemon.join().unwrap().unwrap();
    replica.wait();
    leader.request_shutdown();
    leader.wait();
    std::fs::remove_dir_all(&leader_dir).ok();
    std::fs::remove_dir_all(&follower_dir).ok();
}
