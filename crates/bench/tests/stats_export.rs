//! Cross-process check of the `--stats` export: the global counters are
//! deterministic, so two `repro` runs with the same seed and different
//! worker counts must write byte-identical `disc-stats/1` documents.
//! (Spawning fresh processes keeps the process-wide counter registry
//! clean — in-process tests can only assert lower bounds.)

use std::path::Path;
use std::process::Command;

fn run_repro(workers: u32, stats_path: &Path) -> String {
    let status = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["fig10", "--seed", "7", "--workers"])
        .arg(workers.to_string())
        .arg("--stats")
        .arg(stats_path)
        .output()
        .expect("spawn repro");
    assert!(
        status.status.success(),
        "repro failed: {}",
        String::from_utf8_lossy(&status.stderr)
    );
    std::fs::read_to_string(stats_path).expect("stats file written")
}

#[test]
fn stats_export_identical_across_worker_counts() {
    let dir = std::env::temp_dir();
    let seq = run_repro(1, &dir.join("disc_stats_w1.json"));
    let par = run_repro(4, &dir.join("disc_stats_w4.json"));

    // Self-describing document with the run's provenance in `meta`.
    assert!(seq.starts_with(r#"{"schema":"disc-stats/1""#), "{seq}");
    assert!(seq.contains(r#""command":"fig10""#));
    assert!(seq.contains(r#""seed":"7""#));

    // The export contains only the schema, meta and counters — no wall
    // clock — so determinism means the whole document is byte-identical.
    assert_eq!(seq, par, "counters diverged between worker counts");

    // And the run did real work: the counters are not all zero.
    assert!(seq.contains(r#""pipeline.runs":"#));
    assert!(!seq.contains(r#""pipeline.runs":0"#), "{seq}");
}
