//! Holistic — denial-constraint data cleaning (compact reimplementation
//! after Chu et al., ICDE 2013), with constraints discovered from the data
//! (Chu et al., PVLDB 2013).
//!
//! For the fully-numeric single-table setting of the DISC experiments, the
//! discoverable denial constraints reduce to (1) per-attribute range
//! constraints `¬(t[A] < lo ∨ t[A] > hi)` and (2) pairwise difference
//! bounds `¬(|t[A] − t[B] · slope − offset| > tol)` for strongly
//! correlated attribute pairs. Discovery keeps only constraints satisfied
//! by ≥ `support` of the data — so constraints are *weak by construction*
//! (they must hold on the dirty data), and detection is insufficient:
//! small errors like the longitude slip of `t₁₃` in the paper's Figure 2
//! violate nothing. Repair follows the holistic principle of minimal
//! change: each violated cell moves just inside the constraint boundary.

use disc_data::Dataset;
use disc_distance::{AttrSet, Value};

use crate::{RepairReport, Repairer};

/// A discovered denial constraint over numeric columns.
#[derive(Debug, Clone)]
enum Constraint {
    /// `lo ≤ t[attr] ≤ hi`.
    Range { attr: usize, lo: f64, hi: f64 },
    /// `|t[b] − (slope·t[a] + offset)| ≤ tol` for correlated pairs.
    Linear {
        a: usize,
        b: usize,
        slope: f64,
        offset: f64,
        tol: f64,
    },
}

/// Denial-constraint repairer with data-driven constraint discovery.
#[derive(Debug, Clone, Copy)]
pub struct Holistic {
    /// Fraction of tuples a discovered constraint must satisfy.
    pub support: f64,
    /// Minimum |Pearson correlation| for a pairwise constraint.
    pub min_correlation: f64,
}

impl Default for Holistic {
    fn default() -> Self {
        Holistic {
            support: 0.98,
            min_correlation: 0.9,
        }
    }
}

impl Holistic {
    /// A Holistic configuration with the default discovery thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    fn quantile(sorted: &[f64], q: f64) -> f64 {
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx]
    }

    fn discover(&self, data: &[f64], n: usize, m: usize) -> Vec<Constraint> {
        let mut constraints = Vec::new();
        let margin = (1.0 - self.support) / 2.0;
        let mut cols: Vec<Vec<f64>> = vec![Vec::with_capacity(n); m];
        for r in 0..n {
            for j in 0..m {
                cols[j].push(data[r * m + j]);
            }
        }
        for (j, col) in cols.iter().enumerate() {
            let mut sorted = col.clone();
            sorted.sort_by(f64::total_cmp);
            let lo = Self::quantile(&sorted, margin);
            let hi = Self::quantile(&sorted, 1.0 - margin);
            if hi > lo {
                constraints.push(Constraint::Range { attr: j, lo, hi });
            }
        }
        // Pairwise linear constraints for strongly correlated columns.
        let mean: Vec<f64> = cols
            .iter()
            .map(|c| c.iter().sum::<f64>() / n as f64)
            .collect();
        let std: Vec<f64> = cols
            .iter()
            .enumerate()
            .map(|(j, c)| {
                (c.iter().map(|x| (x - mean[j]) * (x - mean[j])).sum::<f64>() / n as f64).sqrt()
            })
            .collect();
        for a in 0..m {
            for b in (a + 1)..m {
                if std[a] <= 1e-12 || std[b] <= 1e-12 {
                    continue;
                }
                let cov = (0..n)
                    .map(|r| (data[r * m + a] - mean[a]) * (data[r * m + b] - mean[b]))
                    .sum::<f64>()
                    / n as f64;
                let corr = cov / (std[a] * std[b]);
                if corr.abs() >= self.min_correlation {
                    let slope = cov / (std[a] * std[a]);
                    let offset = mean[b] - slope * mean[a];
                    let mut resid: Vec<f64> = (0..n)
                        .map(|r| (data[r * m + b] - slope * data[r * m + a] - offset).abs())
                        .collect();
                    resid.sort_by(f64::total_cmp);
                    let tol = Self::quantile(&resid, self.support);
                    constraints.push(Constraint::Linear {
                        a,
                        b,
                        slope,
                        offset,
                        tol,
                    });
                }
            }
        }
        constraints
    }
}

impl Repairer for Holistic {
    fn name(&self) -> &'static str {
        "Holistic"
    }

    fn repair(&self, ds: &mut Dataset) -> RepairReport {
        let mut report = RepairReport::default();
        let n = ds.len();
        let m = ds.arity();
        let Some(mut data) = ds.to_matrix() else {
            return report;
        };
        if n < 8 {
            return report;
        }
        let constraints = self.discover(&data, n, m);
        let mut touched: Vec<AttrSet> = vec![AttrSet::empty(); n];
        for c in &constraints {
            match *c {
                Constraint::Range { attr, lo, hi } => {
                    for r in 0..n {
                        let v = data[r * m + attr];
                        // Minimal repair: clamp to the violated bound.
                        if v < lo {
                            data[r * m + attr] = lo;
                            touched[r].insert(attr);
                        } else if v > hi {
                            data[r * m + attr] = hi;
                            touched[r].insert(attr);
                        }
                    }
                }
                Constraint::Linear {
                    a,
                    b,
                    slope,
                    offset,
                    tol,
                } => {
                    for r in 0..n {
                        let pred = slope * data[r * m + a] + offset;
                        let resid = data[r * m + b] - pred;
                        if resid.abs() > tol {
                            // Minimal repair: move t[b] just inside the band.
                            data[r * m + b] = pred + tol.copysign(resid);
                            touched[r].insert(b);
                        }
                    }
                }
            }
        }
        for r in 0..n {
            if touched[r].is_empty() {
                continue;
            }
            let mut row = ds.row(r).to_vec();
            // A violated cell can round back to its original value (a
            // residual barely past `tol` when |pred| dwarfs it); report
            // only cells that actually changed.
            let mut changed = AttrSet::empty();
            for a in touched[r].iter() {
                let repaired = Value::Num(data[r * m + a]);
                if !repaired.same(&row[a]) {
                    row[a] = repaired;
                    changed.insert(a);
                }
            }
            if !changed.is_empty() {
                ds.set_row(r, row);
                report.record(r, changed);
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::dirty_clusters;

    #[test]
    fn extreme_values_are_clamped() {
        let (mut ds, log) = dirty_clusters(7);
        let report = Holistic::new().repair(&mut ds);
        assert!(report.rows_modified() > 0);
        // Injected offset errors leave the data range, so range
        // constraints catch (some of) them.
        let dirty: Vec<usize> = log.errors.iter().map(|e| e.row).collect();
        assert!(report.rows.iter().any(|(r, _)| dirty.contains(r)));
    }

    #[test]
    fn subtle_errors_escape_detection() {
        // A value inside the global range violates no discovered DC —
        // the insufficient-detection failure mode the paper describes.
        let mut raw = Vec::new();
        for i in 0..50 {
            raw.push(i as f64 * 0.1);
            raw.push(100.0 + (i % 7) as f64);
        }
        // Swap one tuple's first value with a plausible other value.
        raw[20] = 4.9; // still within [0, 4.9]
        let mut ds = Dataset::from_matrix(2, &raw);
        let report = Holistic::new().repair(&mut ds);
        assert!(report.attrs_of(10).is_none());
    }

    #[test]
    fn linear_constraint_discovered_and_enforced() {
        // b = 2a exactly except one gross violation within the range of b.
        let mut raw = Vec::new();
        for i in 0..60 {
            let a = i as f64;
            raw.push(a);
            raw.push(2.0 * a);
        }
        raw[2 * 30 + 1] = 0.0; // b of row 30 breaks the correlation
        let mut ds = Dataset::from_matrix(2, &raw);
        let report = Holistic::new().repair(&mut ds);
        assert!(report.attrs_of(30).map(|a| a.contains(1)).unwrap_or(false));
        let repaired = ds.row(30)[1].expect_num();
        assert!((repaired - 60.0).abs() < 15.0, "repaired to {repaired}");
    }

    #[test]
    fn non_numeric_data_is_skipped() {
        let mut ds = disc_data::csv::from_str("a,b\nx,1\ny,2\n").unwrap();
        assert_eq!(Holistic::new().repair(&mut ds).rows_modified(), 0);
    }

    #[test]
    fn quantile_helper() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(Holistic::quantile(&v, 0.0), 1.0);
        assert_eq!(Holistic::quantile(&v, 1.0), 5.0);
        assert_eq!(Holistic::quantile(&v, 0.5), 3.0);
    }
}
