//! ERACER — iterative statistical cleaning with linear regression (after
//! Mayfield et al., SIGMOD 2010).
//!
//! Each attribute is modeled by a ridge-regularized linear regression on
//! the remaining attributes (the paper's relational dependency networks,
//! reduced to the fully-numeric single-table case the DISC experiments
//! use). Cells whose residual exceeds `z · σ` are replaced by their
//! prediction; the fit-and-repair loop runs for a few rounds, mirroring
//! ERACER's iterative convergence. As the DISC paper notes (Section 5),
//! the model is learned from partially dirty data, so repairs can
//! over-change. Numeric data only — the record-matching experiment skips
//! ERACER for exactly this reason (Figure 8).

use disc_data::Dataset;
use disc_distance::{AttrSet, Value};

use crate::{RepairReport, Repairer};

/// Iterative regression-based cleaner.
#[derive(Debug, Clone, Copy)]
pub struct Eracer {
    /// Residual threshold in standard deviations (default 3.0).
    pub z_threshold: f64,
    /// Fit-and-repair rounds (default 3).
    pub rounds: usize,
    /// Ridge regularization strength.
    pub ridge: f64,
}

impl Default for Eracer {
    fn default() -> Self {
        Eracer {
            z_threshold: 3.0,
            rounds: 3,
            ridge: 1e-3,
        }
    }
}

impl Eracer {
    /// An ERACER configuration with the default thresholds.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Solves the ridge normal equations `(XᵀX + λI) w = Xᵀy` by Gaussian
/// elimination with partial pivoting. `x` is row-major `n × p`.
fn ridge_solve(x: &[f64], y: &[f64], n: usize, p: usize, lambda: f64) -> Vec<f64> {
    // Build the augmented matrix [XᵀX + λI | Xᵀy].
    let mut a = vec![0.0f64; p * (p + 1)];
    for i in 0..p {
        for j in 0..p {
            let mut s = 0.0;
            for r in 0..n {
                s += x[r * p + i] * x[r * p + j];
            }
            if i == j {
                s += lambda * n as f64;
            }
            a[i * (p + 1) + j] = s;
        }
        let mut s = 0.0;
        for r in 0..n {
            s += x[r * p + i] * y[r];
        }
        a[i * (p + 1) + p] = s;
    }
    // Gaussian elimination.
    for col in 0..p {
        let mut pivot = col;
        for r in (col + 1)..p {
            if a[r * (p + 1) + col].abs() > a[pivot * (p + 1) + col].abs() {
                pivot = r;
            }
        }
        if a[pivot * (p + 1) + col].abs() < 1e-12 {
            continue;
        }
        if pivot != col {
            for c in 0..=p {
                a.swap(col * (p + 1) + c, pivot * (p + 1) + c);
            }
        }
        let diag = a[col * (p + 1) + col];
        for r in 0..p {
            if r == col {
                continue;
            }
            let factor = a[r * (p + 1) + col] / diag;
            for c in col..=p {
                a[r * (p + 1) + c] -= factor * a[col * (p + 1) + c];
            }
        }
    }
    (0..p)
        .map(|i| {
            let diag = a[i * (p + 1) + i];
            if diag.abs() < 1e-12 {
                0.0
            } else {
                a[i * (p + 1) + p] / diag
            }
        })
        .collect()
}

impl Repairer for Eracer {
    fn name(&self) -> &'static str {
        "ERACER"
    }

    fn repair(&self, ds: &mut Dataset) -> RepairReport {
        let m = ds.arity();
        let n = ds.len();
        let mut report = RepairReport::default();
        let Some(mut data) = ds.to_matrix() else {
            // Numeric-only method: leave non-numeric data untouched.
            return report;
        };
        if n < m + 2 || m < 2 {
            return report;
        }
        let mut touched: Vec<AttrSet> = vec![AttrSet::empty(); n];
        for _ in 0..self.rounds {
            let mut changed = false;
            for target in 0..m {
                // Design matrix: all other attributes plus an intercept.
                let p = m; // (m − 1) features + intercept
                let mut x = vec![0.0f64; n * p];
                let mut y = vec![0.0f64; n];
                for r in 0..n {
                    let mut c = 0;
                    for j in 0..m {
                        if j == target {
                            continue;
                        }
                        x[r * p + c] = data[r * m + j];
                        c += 1;
                    }
                    x[r * p + p - 1] = 1.0;
                    y[r] = data[r * m + target];
                }
                let w = ridge_solve(&x, &y, n, p, self.ridge);
                // Residual statistics.
                let pred: Vec<f64> = (0..n)
                    .map(|r| (0..p).map(|c| w[c] * x[r * p + c]).sum())
                    .collect();
                let resid: Vec<f64> = (0..n).map(|r| y[r] - pred[r]).collect();
                let mean = resid.iter().sum::<f64>() / n as f64;
                let var = resid.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / n as f64;
                let sigma = var.sqrt().max(1e-12);
                for r in 0..n {
                    if (resid[r] - mean).abs() > self.z_threshold * sigma {
                        data[r * m + target] = pred[r];
                        touched[r].insert(target);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        for r in 0..n {
            if !touched[r].is_empty() {
                let mut row = ds.row(r).to_vec();
                for a in touched[r].iter() {
                    row[a] = Value::Num(data[r * m + a]);
                }
                ds.set_row(r, row);
                report.record(r, touched[r]);
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_and_dampens_gross_regression_outlier() {
        // y ≈ 2x, except one grossly corrupted y cell. On perfectly
        // correlated data the repair direction is ambiguous (fixing either
        // cell restores consistency — the over-change failure mode the DISC
        // paper ascribes to statistical cleaners), so we assert detection
        // and damping, not exact recovery.
        let mut raw = Vec::new();
        for i in 0..40 {
            let x = i as f64 * 0.5;
            raw.push(x);
            raw.push(2.0 * x + 0.01 * ((i % 5) as f64));
        }
        raw[2 * 10 + 1] = 500.0; // corrupt row 10's y (truth ≈ 10)
        let mut ds = Dataset::from_matrix(2, &raw);
        let report = Eracer::new().repair(&mut ds);
        assert!(report.attrs_of(10).is_some(), "corrupted row not touched");
        // The gross 500 must not survive verbatim.
        let fixed = ds.row(10)[1].expect_num();
        assert!(fixed < 400.0, "gross error survived: {fixed}");
    }

    #[test]
    fn clean_linear_data_untouched() {
        let mut raw = Vec::new();
        for i in 0..30 {
            let x = i as f64;
            raw.push(x);
            raw.push(3.0 * x + 1.0);
        }
        let mut ds = Dataset::from_matrix(2, &raw);
        let before = ds.to_matrix().unwrap();
        let report = Eracer::new().repair(&mut ds);
        assert_eq!(report.rows_modified(), 0);
        assert_eq!(ds.to_matrix().unwrap(), before);
    }

    #[test]
    fn non_numeric_data_is_skipped() {
        let mut ds = disc_data::csv::from_str("a,b\nx,1\ny,2\n").unwrap();
        let report = Eracer::new().repair(&mut ds);
        assert_eq!(report.rows_modified(), 0);
    }

    #[test]
    fn tiny_dataset_is_skipped() {
        let mut ds = Dataset::from_matrix(3, &[1.0, 2.0, 3.0]);
        let report = Eracer::new().repair(&mut ds);
        assert_eq!(report.rows_modified(), 0);
    }

    #[test]
    fn ridge_solver_known_system() {
        // y = 2a + 3 (intercept); two features: a and constant 1.
        let x = vec![1.0, 1.0, 2.0, 1.0, 3.0, 1.0, 4.0, 1.0];
        let y = vec![5.0, 7.0, 9.0, 11.0];
        let w = ridge_solve(&x, &y, 4, 2, 0.0);
        assert!((w[0] - 2.0).abs() < 1e-9);
        assert!((w[1] - 3.0).abs() < 1e-9);
    }
}
