//! DORC — density-based repair by tuple substitution (Song et al., KDD
//! 2015, "Turn waste into wealth").
//!
//! DORC cleans noisy data so that every tuple becomes ρ-covered for
//! density-based clustering. The original formulates a quadratic program;
//! this is the greedy counterpart that preserves DORC's defining behaviour:
//! each violating tuple is substituted *wholesale* by the nearest existing
//! tuple that satisfies the distance constraints — all attributes change,
//! which is exactly the over-changing the DISC paper contrasts against
//! (Figure 2(b): `t₂₄` is replaced by `t₂₁` on Time, Longitude *and*
//! Latitude).

use disc_core::{detect_outliers, DistanceConstraints, RSet};
use disc_data::Dataset;
use disc_distance::{AttrSet, TupleDistance};

use crate::{RepairReport, Repairer};

/// Greedy DORC: nearest-feasible-tuple substitution.
#[derive(Debug, Clone)]
pub struct Dorc {
    /// The distance constraints shared with DISC (Section 4.1.4).
    pub constraints: DistanceConstraints,
    /// The tuple metric.
    pub dist: TupleDistance,
}

impl Dorc {
    /// Builds a DORC repairer.
    pub fn new(constraints: DistanceConstraints, dist: TupleDistance) -> Self {
        Dorc { constraints, dist }
    }
}

impl Repairer for Dorc {
    fn name(&self) -> &'static str {
        "DORC"
    }

    fn repair(&self, ds: &mut Dataset) -> RepairReport {
        let split = detect_outliers(ds.rows(), &self.dist, self.constraints);
        let inlier_rows: Vec<_> = split
            .inliers
            .iter()
            .map(|&i| ds.rows()[i].clone())
            .collect();
        let r = RSet::new(inlier_rows, self.dist.clone(), self.constraints);
        let mut report = RepairReport::default();
        for &row in &split.outliers {
            // The nearest inlier that itself satisfies the constraints
            // within r (a core tuple): substituting onto it guarantees the
            // repaired tuple is ρ-covered.
            let t_o = ds.row(row);
            let mut best: Option<(usize, f64)> = None;
            for (i, cand) in r.rows().iter().enumerate() {
                if r.delta_eta(i) <= self.constraints.eps {
                    let d = self.dist.dist(t_o, cand);
                    if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                        best = Some((i, d));
                    }
                }
            }
            if let Some((i, _)) = best {
                let replacement = r.rows()[i].clone();
                let mut attrs = AttrSet::empty();
                for (a, new_value) in replacement.iter().enumerate() {
                    if !new_value.same(&ds.row(row)[a]) {
                        attrs.insert(a);
                    }
                }
                ds.set_row(row, replacement);
                report.record(row, attrs);
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::dirty_clusters;
    use disc_distance::Value;

    #[test]
    fn substitutes_whole_tuples() {
        let (mut ds, log) = dirty_clusters(3);
        let dorc = Dorc::new(DistanceConstraints::new(2.5, 5), TupleDistance::numeric(3));
        let report = dorc.repair(&mut ds);
        assert!(report.rows_modified() > 0);
        // DORC substitutions touch (nearly) all attributes — the defining
        // over-change: on continuous data the nearest tuple differs in
        // every coordinate.
        let avg_attrs: f64 = report.rows.iter().map(|(_, a)| a.len() as f64).sum::<f64>()
            / report.rows_modified() as f64;
        assert!(
            avg_attrs > 2.5,
            "avg modified attrs {avg_attrs} too low for DORC"
        );
        // Repaired rows now exist verbatim in the dataset (substitution).
        for (row, _) in &report.rows {
            let repaired = ds.row(*row);
            let twin =
                ds.rows().iter().enumerate().any(|(i, other)| {
                    i != *row && other.iter().zip(repaired).all(|(a, b)| a.same(b))
                });
            assert!(twin, "row {row} is not a copy of an existing tuple");
        }
        let _ = log;
    }

    #[test]
    fn clean_data_untouched() {
        let mut rows = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                rows.push(vec![Value::Num(0.2 * i as f64), Value::Num(0.2 * j as f64)]);
            }
        }
        let mut ds = Dataset::from_rows(vec!["x".into(), "y".into()], rows);
        let dorc = Dorc::new(DistanceConstraints::new(0.5, 4), TupleDistance::numeric(2));
        let before = ds.rows().to_vec();
        let report = dorc.repair(&mut ds);
        assert_eq!(report.rows_modified(), 0);
        assert_eq!(ds.rows(), before.as_slice());
    }

    #[test]
    fn after_repair_no_violations_remain() {
        let (mut ds, _) = dirty_clusters(8);
        let c = DistanceConstraints::new(2.5, 5);
        let dist = TupleDistance::numeric(3);
        Dorc::new(c, dist.clone()).repair(&mut ds);
        let split = detect_outliers(ds.rows(), &dist, c);
        assert!(
            split.outliers.is_empty(),
            "violations left: {:?}",
            split.outliers
        );
    }
}
