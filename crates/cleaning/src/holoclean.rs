//! HoloClean — probabilistic repair with attribute co-occurrence features
//! (compact reimplementation after Rekatsinas et al., VLDB 2017).
//!
//! The original compiles denial constraints, external data and statistics
//! into a factor graph and learns its weights; variables corresponding to
//! clean cells are treated as labeled examples (empirical risk
//! minimization). This reimplementation keeps the statistical core of that
//! design for the single-table setting of the DISC experiments:
//!
//! * numeric attributes are discretized into equi-width bins; categorical
//!   (text) attributes use their most frequent values as categories, so
//!   the method also participates in the Restaurant experiment (Figure 8);
//! * pairwise conditionals `P(code_j | code_i)` are estimated with Laplace
//!   smoothing (the ERM-style weighting);
//! * a cell is suspicious when its average conditional likelihood given
//!   the tuple's other attributes falls below a threshold;
//! * suspicious cells are repaired to the code maximizing that likelihood
//!   (bin center for numeric attributes, category value for text).
//!
//! In line with Figures 10(c)–(f) of the DISC paper, the co-occurrence
//! signal marks many attributes at once, so HoloClean modifies noticeably
//! more cells per tuple than DISC.

use std::collections::HashMap;

use disc_data::Dataset;
use disc_distance::{AttrSet, Value};

use crate::{RepairReport, Repairer};

/// Co-occurrence-based probabilistic repairer.
#[derive(Debug, Clone, Copy)]
pub struct HoloClean {
    /// Number of equi-width bins per numeric attribute (also the cap on
    /// categorical codes).
    pub bins: usize,
    /// Likelihood threshold below which a cell is considered dirty.
    pub threshold: f64,
    /// Laplace smoothing mass.
    pub smoothing: f64,
}

impl Default for HoloClean {
    fn default() -> Self {
        HoloClean {
            bins: 12,
            threshold: 0.04,
            smoothing: 0.5,
        }
    }
}

impl HoloClean {
    /// A HoloClean configuration with the default parameters.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Per-attribute encoding into small integer codes.
enum AttrCode {
    /// Equi-width numeric bins.
    Numeric { lo: f64, width: f64, b: usize },
    /// Frequent-category codes; code `reps.len()` is the "other" bucket.
    Categorical {
        reps: Vec<Value>,
        index: HashMap<String, usize>,
    },
}

impl AttrCode {
    fn build(ds: &Dataset, attr: usize, b: usize) -> AttrCode {
        let numeric = ds.rows().iter().all(|r| r[attr].as_num().is_some());
        if numeric {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for r in ds.rows() {
                let x = r[attr].expect_num();
                lo = lo.min(x);
                hi = hi.max(x);
            }
            AttrCode::Numeric {
                lo,
                width: ((hi - lo) / b as f64).max(1e-12),
                b,
            }
        } else {
            // Frequency-ranked categories, capped at b.
            let mut counts: HashMap<String, usize> = HashMap::new();
            for r in ds.rows() {
                *counts.entry(r[attr].to_string()).or_insert(0) += 1;
            }
            let mut by_freq: Vec<(String, usize)> = counts.into_iter().collect();
            by_freq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            by_freq.truncate(b);
            let mut index = HashMap::new();
            let mut reps = Vec::new();
            for (i, (s, _)) in by_freq.iter().enumerate() {
                index.insert(s.clone(), i);
                reps.push(Value::Text(s.clone()));
            }
            AttrCode::Categorical { reps, index }
        }
    }

    /// Number of codes (including the categorical "other" bucket).
    fn codes(&self) -> usize {
        match self {
            AttrCode::Numeric { b, .. } => *b,
            AttrCode::Categorical { reps, .. } => reps.len() + 1,
        }
    }

    fn encode(&self, v: &Value) -> usize {
        match self {
            AttrCode::Numeric { lo, width, b } => {
                (((v.expect_num() - lo) / width) as usize).min(b - 1)
            }
            AttrCode::Categorical { reps, index } => {
                index.get(&v.to_string()).copied().unwrap_or(reps.len())
            }
        }
    }

    /// A representative value for a code (used as the repair target);
    /// `None` for the categorical "other" bucket.
    fn decode(&self, code: usize) -> Option<Value> {
        match self {
            AttrCode::Numeric { lo, width, .. } => {
                Some(Value::Num(lo + (code as f64 + 0.5) * width))
            }
            AttrCode::Categorical { reps, .. } => reps.get(code).cloned(),
        }
    }
}

impl Repairer for HoloClean {
    fn name(&self) -> &'static str {
        "HoloClean"
    }

    fn repair(&self, ds: &mut Dataset) -> RepairReport {
        let mut report = RepairReport::default();
        let n = ds.len();
        let m = ds.arity();
        if n < 8 || m < 2 {
            return report;
        }
        let codes: Vec<AttrCode> = (0..m).map(|j| AttrCode::build(ds, j, self.bins)).collect();
        let b = codes.iter().map(AttrCode::codes).max().unwrap_or(1);
        let encoded: Vec<usize> = ds
            .rows()
            .iter()
            .flat_map(|r| (0..m).map(|j| codes[j].encode(&r[j])).collect::<Vec<_>>())
            .collect();

        // Pairwise co-occurrence counts, flattened as
        // ((i * m + j) * b + ci) * b + cj.
        let mut cooc = vec![0.0f64; m * m * b * b];
        for r in 0..n {
            for i in 0..m {
                for j in 0..m {
                    if i == j {
                        continue;
                    }
                    let ci = encoded[r * m + i];
                    let cj = encoded[r * m + j];
                    cooc[((i * m + j) * b + ci) * b + cj] += 1.0;
                }
            }
        }
        // P(code_j = cj | code_i = ci), Laplace-smoothed.
        let cond = |i: usize, ci: usize, j: usize, cj: usize| -> f64 {
            let base = (i * m + j) * b + ci;
            let row_total: f64 = (0..codes[j].codes()).map(|x| cooc[base * b + x]).sum();
            (cooc[base * b + cj] + self.smoothing)
                / (row_total + self.smoothing * codes[j].codes() as f64)
        };

        for r in 0..n {
            let mut attrs = AttrSet::empty();
            let mut new_row = ds.row(r).to_vec();
            for j in 0..m {
                let cj = encoded[r * m + j];
                // Average conditional likelihood of this cell's code given
                // the other attributes of the tuple.
                let mut score = 0.0;
                for i in 0..m {
                    if i == j {
                        continue;
                    }
                    score += cond(i, encoded[r * m + i], j, cj);
                }
                score /= (m - 1) as f64;
                if score < self.threshold {
                    // Repair to the most likely code given the others.
                    let best = (0..codes[j].codes())
                        .max_by(|&x, &y| {
                            let sx: f64 = (0..m)
                                .filter(|&i| i != j)
                                .map(|i| cond(i, encoded[r * m + i], j, x))
                                .sum();
                            let sy: f64 = (0..m)
                                .filter(|&i| i != j)
                                .map(|i| cond(i, encoded[r * m + i], j, y))
                                .sum();
                            sx.total_cmp(&sy)
                        })
                        .unwrap_or(cj);
                    if best != cj {
                        if let Some(v) = codes[j].decode(best) {
                            new_row[j] = v;
                            attrs.insert(j);
                        }
                    }
                }
            }
            if !attrs.is_empty() {
                ds.set_row(r, new_row);
                report.record(r, attrs);
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::dirty_clusters;

    #[test]
    fn repairs_low_likelihood_cells() {
        let (mut ds, log) = dirty_clusters(5);
        let report = HoloClean::new().repair(&mut ds);
        // It finds something to clean on dirty clustered data.
        assert!(report.rows_modified() > 0);
        // At least one injected dirty row is among the modified ones.
        let dirty_rows: Vec<usize> = log.errors.iter().map(|e| e.row).collect();
        let hit = report.rows.iter().any(|(r, _)| dirty_rows.contains(r));
        assert!(hit, "no injected error was touched");
    }

    #[test]
    fn clean_tight_clusters_mostly_untouched() {
        let ds0 = disc_data::ClusterSpec::new(200, 3, 2, 2).generate();
        let mut ds = ds0.clone();
        let report = HoloClean::new().repair(&mut ds);
        // Without injected errors the co-occurrence structure is
        // self-consistent: few repairs fire.
        assert!(
            report.rows_modified() < 20,
            "{} clean rows modified",
            report.rows_modified()
        );
    }

    #[test]
    fn categorical_data_is_repairable() {
        // City and zip co-occur perfectly except one corrupted zip.
        let mut csv = String::from("city,zip\n");
        for _ in 0..20 {
            csv.push_str("crawley,RH10\n");
            csv.push_str("london,SW1A\n");
        }
        csv.push_str("crawley,ZZ99\n"); // corrupt zip for crawley
        let mut ds = disc_data::csv::from_str(&csv).unwrap();
        let report = HoloClean {
            threshold: 0.2,
            ..HoloClean::new()
        }
        .repair(&mut ds);
        let last = ds.len() - 1;
        assert!(report.attrs_of(last).is_some(), "corrupted zip not flagged");
        assert_eq!(ds.row(last)[1], Value::Text("RH10".into()));
    }

    #[test]
    fn tiny_dataset_is_skipped() {
        let mut ds = Dataset::from_matrix(2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(HoloClean::new().repair(&mut ds).rows_modified(), 0);
    }

    #[test]
    fn attr_code_numeric_roundtrip() {
        let ds = Dataset::from_matrix(2, &[0.0, 10.0, 5.0, 20.0, 10.0, 30.0]);
        let code = AttrCode::build(&ds, 0, 4);
        assert_eq!(code.codes(), 4);
        assert_eq!(code.encode(&Value::Num(0.0)), 0);
        assert_eq!(code.encode(&Value::Num(10.0)), 3);
        let center = code.decode(0).unwrap().expect_num();
        assert!(center > 0.0 && center < 5.0);
    }

    #[test]
    fn attr_code_categorical_caps_and_buckets() {
        let csv = "a\nx\nx\nx\ny\ny\nz\nw\n";
        let ds = disc_data::csv::from_str(csv).unwrap();
        let code = AttrCode::build(&ds, 0, 2);
        // Two frequent categories + "other".
        assert_eq!(code.codes(), 3);
        assert_eq!(code.encode(&Value::Text("x".into())), 0);
        assert_eq!(code.encode(&Value::Text("y".into())), 1);
        assert_eq!(code.encode(&Value::Text("z".into())), 2); // other
        assert_eq!(code.decode(0), Some(Value::Text("x".into())));
        assert_eq!(code.decode(2), None); // "other" has no representative
    }
}
