//! Competing data-cleaning methods (Section 4.1.4 of the paper) and the
//! SSE outlier explainer (Section 4.3).
//!
//! * [`Dorc`] — density-based repair by *tuple substitution* (Song et al.,
//!   KDD 2015): each violating tuple is replaced wholesale by the nearest
//!   existing tuple that satisfies the constraints — the over-changing
//!   behaviour DISC improves on (Figures 1(c) and 2(b));
//! * [`Eracer`] — iterative statistical cleaning with per-attribute linear
//!   regression (Mayfield et al., SIGMOD 2010); numeric data only;
//! * [`HoloClean`] — probabilistic repair driven by attribute
//!   co-occurrence statistics with smoothed (ERM-style) weights
//!   (Rekatsinas et al., VLDB 2017), compact reimplementation;
//! * [`Holistic`] — denial-constraint cleaning (Chu et al., ICDE 2013):
//!   numeric range/denial constraints are discovered from the data itself
//!   and violations repaired minimally — discovered constraints are weak,
//!   so detection is insufficient (Section 5's discussion);
//! * [`Sse`] — Subspace Separability Explanation (Micenková et al., ICDM
//!   2013): identifies the attributes in which an outlier is separable,
//!   without saying how to fix them;
//! * [`DiscRepairer`] / [`ExactRepairer`] — adapters exposing the DISC and
//!   exact savers through the same [`Repairer`] interface.
//!
//! Every repairer mutates the dataset in place and reports which cells it
//! touched, so the harness can measure modified-attribute counts and
//! adjustment magnitudes (Figures 10(c)–(f)).

pub mod dorc;
pub mod eracer;
pub mod holistic;
pub mod holoclean;
pub mod sse;

pub use dorc::Dorc;
pub use eracer::Eracer;
pub use holistic::Holistic;
pub use holoclean::HoloClean;
pub use sse::Sse;

use disc_data::Dataset;
use disc_distance::AttrSet;

/// What a repairer did to a dataset.
#[derive(Debug, Clone, Default)]
pub struct RepairReport {
    /// `(row, modified attributes)` for every touched row.
    pub rows: Vec<(usize, AttrSet)>,
}

impl RepairReport {
    /// Records a modification (no-op for an empty attribute set).
    pub fn record(&mut self, row: usize, attrs: AttrSet) {
        if !attrs.is_empty() {
            self.rows.push((row, attrs));
        }
    }

    /// The modified attributes of a row, if it was touched.
    pub fn attrs_of(&self, row: usize) -> Option<AttrSet> {
        self.rows.iter().find(|(r, _)| *r == row).map(|(_, a)| *a)
    }

    /// Number of modified rows.
    pub fn rows_modified(&self) -> usize {
        self.rows.len()
    }

    /// Total number of modified cells.
    pub fn cells_modified(&self) -> usize {
        self.rows.iter().map(|(_, a)| a.len()).sum()
    }
}

/// A data-cleaning method that repairs a dataset in place.
pub trait Repairer {
    /// Display name used in the experiment tables.
    fn name(&self) -> &'static str;

    /// Repairs the dataset in place and reports the touched cells.
    fn repair(&self, ds: &mut Dataset) -> RepairReport;
}

/// [`Repairer`] adapter over the DISC saver, so the harness can treat DISC
/// and the cleaning baselines uniformly.
pub struct DiscRepairer(pub disc_core::DiscSaver);

impl Repairer for DiscRepairer {
    fn name(&self) -> &'static str {
        "DISC"
    }

    fn repair(&self, ds: &mut Dataset) -> RepairReport {
        let save = self.0.save_all(ds);
        let mut report = RepairReport::default();
        for s in &save.saved {
            report.record(s.row, s.adjustment.adjusted);
        }
        report
    }
}

/// [`Repairer`] adapter over the exact saver (the "Exact" baseline of
/// Figures 6 and 7).
pub struct ExactRepairer(pub disc_core::ExactSaver);

impl Repairer for ExactRepairer {
    fn name(&self) -> &'static str {
        "Exact"
    }

    fn repair(&self, ds: &mut Dataset) -> RepairReport {
        let save = self.0.save_all(ds);
        let mut report = RepairReport::default();
        for s in &save.saved {
            report.record(s.row, s.adjustment.adjusted);
        }
        report
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use disc_data::{ClusterSpec, Dataset, ErrorInjector, InjectionLog};

    /// A small clustered dataset with injected single/double-attribute
    /// errors, shared by the repairer tests.
    pub fn dirty_clusters(seed: u64) -> (Dataset, InjectionLog) {
        let mut ds = ClusterSpec::new(150, 3, 2, seed).generate();
        let log = ErrorInjector::new(8, 2, seed ^ 0xAB).inject(&mut ds);
        (ds, log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_bookkeeping() {
        let mut r = RepairReport::default();
        r.record(3, AttrSet::from_indices([0, 2]));
        r.record(5, AttrSet::empty()); // ignored
        r.record(7, AttrSet::from_indices([1]));
        assert_eq!(r.rows_modified(), 2);
        assert_eq!(r.cells_modified(), 3);
        assert_eq!(r.attrs_of(3), Some(AttrSet::from_indices([0, 2])));
        assert_eq!(r.attrs_of(5), None);
    }

    #[test]
    fn disc_repairer_adapts_saver() {
        use disc_core::{DistanceConstraints, SaverConfig};
        use disc_distance::{TupleDistance, Value};

        let mut rows = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                rows.push(vec![Value::Num(0.2 * i as f64), Value::Num(0.2 * j as f64)]);
            }
        }
        rows.push(vec![Value::Num(0.4), Value::Num(25.0)]);
        let mut ds = Dataset::from_rows(vec!["x".into(), "y".into()], rows);
        let repairer = DiscRepairer(
            SaverConfig::new(DistanceConstraints::new(0.5, 4), TupleDistance::numeric(2))
                .build_approx()
                .unwrap(),
        );
        let report = repairer.repair(&mut ds);
        assert_eq!(report.rows_modified(), 1);
        assert_eq!(report.attrs_of(25), Some(AttrSet::from_indices([1])));
    }
}
