//! SSE — Subspace Separability Explanation (after Micenková et al., ICDM
//! 2013).
//!
//! Given a detected outlier, SSE identifies the attribute subspace in
//! which the outlier is separable from the inliers; it explains *why* the
//! tuple is outlying but — as Section 4.3 of the DISC paper points out —
//! does not say how the values should be adjusted. The original trains a
//! classifier between the outlier and reference points; this compact
//! version scores per-attribute separability directly: attribute `A` is in
//! the explanation when the outlier's value sits far outside the inlier
//! distribution of `A` (robust z-score above a threshold).

use disc_distance::{AttrSet, Value};

use crate::RepairReport;

/// Subspace separability explainer.
#[derive(Debug, Clone, Copy)]
pub struct Sse {
    /// Robust z-score above which an attribute is deemed separable.
    pub z_threshold: f64,
}

impl Default for Sse {
    fn default() -> Self {
        Sse { z_threshold: 2.5 }
    }
}

impl Sse {
    /// An SSE explainer with the default threshold.
    pub fn new() -> Self {
        Self::default()
    }

    /// Explains one outlier against the inlier rows: the set of attributes
    /// in which it shows separability. Non-numeric attributes use exact
    /// match against the inlier values (separable iff the value is unseen).
    pub fn explain(&self, inliers: &[Vec<Value>], t_o: &[Value]) -> AttrSet {
        let m = t_o.len();
        let mut attrs = AttrSet::empty();
        if inliers.is_empty() {
            return attrs;
        }
        for j in 0..m {
            match t_o[j].as_num() {
                Some(x) => {
                    // Robust location/scale: median and MAD of the inlier
                    // column.
                    let mut col: Vec<f64> =
                        inliers.iter().filter_map(|row| row[j].as_num()).collect();
                    if col.is_empty() {
                        continue;
                    }
                    col.sort_by(f64::total_cmp);
                    let median = col[col.len() / 2];
                    let mut dev: Vec<f64> = col.iter().map(|v| (v - median).abs()).collect();
                    dev.sort_by(f64::total_cmp);
                    // 1.4826 scales the MAD to the normal σ.
                    let mad = (dev[dev.len() / 2] * 1.4826).max(1e-9);
                    if ((x - median) / mad).abs() > self.z_threshold {
                        attrs.insert(j);
                    }
                }
                None => {
                    let seen = inliers.iter().any(|row| row[j].same(&t_o[j]));
                    if !seen {
                        attrs.insert(j);
                    }
                }
            }
        }
        attrs
    }

    /// Explains a batch of outliers, reporting per-row separable attribute
    /// sets in the same shape repairers use (for the Figure 9/10 Jaccard
    /// comparison).
    pub fn explain_all(
        &self,
        inliers: &[Vec<Value>],
        outliers: &[(usize, &[Value])],
    ) -> RepairReport {
        let mut report = RepairReport::default();
        for &(row, t_o) in outliers {
            report.record(row, self.explain(inliers, t_o));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inliers_2d() -> Vec<Vec<Value>> {
        (0..30)
            .map(|i| {
                vec![
                    Value::Num(10.0 + 0.1 * (i % 6) as f64),
                    Value::Num(-5.0 + 0.1 * (i / 6) as f64),
                ]
            })
            .collect()
    }

    #[test]
    fn flags_only_the_deviant_attribute() {
        let inliers = inliers_2d();
        let t_o = vec![Value::Num(10.2), Value::Num(40.0)];
        let attrs = Sse::new().explain(&inliers, &t_o);
        assert_eq!(attrs.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn flags_all_attributes_of_natural_outlier() {
        let inliers = inliers_2d();
        let t_o = vec![Value::Num(-90.0), Value::Num(77.0)];
        let attrs = Sse::new().explain(&inliers, &t_o);
        assert_eq!(attrs.len(), 2);
    }

    #[test]
    fn inlier_like_tuple_has_empty_explanation() {
        let inliers = inliers_2d();
        let t_o = vec![Value::Num(10.3), Value::Num(-4.8)];
        assert!(Sse::new().explain(&inliers, &t_o).is_empty());
    }

    #[test]
    fn textual_attribute_separability() {
        let inliers: Vec<Vec<Value>> = ["ab", "ac", "ad"]
            .iter()
            .map(|s| vec![Value::Text(s.to_string())])
            .collect();
        let unseen = vec![Value::Text("zz".into())];
        let seen = vec![Value::Text("ab".into())];
        assert_eq!(Sse::new().explain(&inliers, &unseen).len(), 1);
        assert!(Sse::new().explain(&inliers, &seen).is_empty());
    }

    #[test]
    fn empty_inliers_explain_nothing() {
        let t_o = vec![Value::Num(0.0)];
        assert!(Sse::new().explain(&[], &t_o).is_empty());
    }

    #[test]
    fn batch_explanation() {
        let inliers = inliers_2d();
        let o1 = vec![Value::Num(10.2), Value::Num(40.0)];
        let o2 = vec![Value::Num(10.25), Value::Num(-4.9)];
        let outliers = vec![(5usize, o1.as_slice()), (9usize, o2.as_slice())];
        let report = Sse::new().explain_all(&inliers, &outliers);
        assert_eq!(report.rows_modified(), 1); // o2's explanation is empty
        assert!(report.attrs_of(5).is_some());
    }
}
