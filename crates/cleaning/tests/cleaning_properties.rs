//! Property tests for the cleaning baselines: reports must be consistent
//! with the actual mutations, and clean structure must survive.

use disc_cleaning::{Dorc, Eracer, Holistic, HoloClean, Repairer, Sse};
use disc_core::DistanceConstraints;
use disc_data::{ClusterSpec, ErrorInjector};
use disc_distance::{TupleDistance, Value};
use proptest::prelude::*;

fn repairers(c: DistanceConstraints, dist: &TupleDistance) -> Vec<Box<dyn Repairer>> {
    vec![
        Box::new(Dorc::new(c, dist.clone())),
        Box::new(Eracer::new()),
        Box::new(HoloClean::new()),
        Box::new(Holistic::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every repairer's report matches the cells it actually changed:
    /// reported attributes differ from the input, unreported cells are
    /// bitwise identical.
    #[test]
    fn reports_match_mutations(seed in 0u64..200, dirty in 2usize..10) {
        let mut base = ClusterSpec::new(120, 3, 2, seed).generate();
        ErrorInjector::new(dirty, 1, seed ^ 0x5EED).inject(&mut base);
        let dist = TupleDistance::numeric(3);
        let c = DistanceConstraints::new(2.5, 4);
        for repairer in repairers(c, &dist) {
            let mut ds = base.clone();
            let report = repairer.repair(&mut ds);
            for row in 0..ds.len() {
                let attrs = report.attrs_of(row);
                for a in 0..3 {
                    let changed = !ds.row(row)[a].same(&base.row(row)[a]);
                    let reported = attrs.map(|s| s.contains(a)).unwrap_or(false);
                    prop_assert_eq!(
                        changed, reported,
                        "{}: row {} attr {} changed={} reported={}",
                        repairer.name(), row, a, changed, reported
                    );
                }
            }
        }
    }

    /// Repairers are deterministic: repeating the repair on the same input
    /// yields identical data and reports.
    #[test]
    fn repairers_are_deterministic(seed in 0u64..100) {
        let mut base = ClusterSpec::new(100, 3, 2, seed).generate();
        ErrorInjector::new(5, 1, seed).inject(&mut base);
        let dist = TupleDistance::numeric(3);
        let c = DistanceConstraints::new(2.5, 4);
        for repairer in repairers(c, &dist) {
            let mut a = base.clone();
            let mut b = base.clone();
            let ra = repairer.repair(&mut a);
            let rb = repairer.repair(&mut b);
            prop_assert_eq!(a.to_matrix(), b.to_matrix(), "{}", repairer.name());
            prop_assert_eq!(ra.rows.len(), rb.rows.len());
        }
    }

    /// SSE explanations are subsets of the schema and empty for tuples
    /// drawn from the inlier distribution itself.
    #[test]
    fn sse_explanations_are_well_formed(seed in 0u64..100) {
        let ds = ClusterSpec::new(80, 4, 1, seed).generate();
        let inliers: Vec<Vec<Value>> = ds.rows().to_vec();
        let sse = Sse::new();
        // A member of the data explains (almost) nothing.
        let member = ds.row(0).to_vec();
        let attrs = sse.explain(&inliers, &member);
        prop_assert!(attrs.len() <= 1, "member flagged in {} attrs", attrs.len());
        // A far-away point is separable in every attribute.
        let far: Vec<Value> = (0..4).map(|_| Value::Num(1e6)).collect();
        prop_assert_eq!(sse.explain(&inliers, &far).len(), 4);
    }

    /// Dorc never invents values: every repaired row equals some row of
    /// the pre-repair dataset.
    #[test]
    fn dorc_substitutes_existing_tuples(seed in 0u64..100) {
        let mut ds = ClusterSpec::new(100, 2, 2, seed).generate();
        ErrorInjector::new(6, 1, seed ^ 3).inject(&mut ds);
        let before: Vec<Vec<Value>> = ds.rows().to_vec();
        let dist = TupleDistance::numeric(2);
        let report = Dorc::new(DistanceConstraints::new(2.5, 4), dist).repair(&mut ds);
        for (row, _) in &report.rows {
            let repaired = ds.row(*row);
            let exists = before
                .iter()
                .any(|orig| orig.iter().zip(repaired).all(|(a, b)| a.same(b)));
            prop_assert!(exists, "row {row} is not an existing tuple");
        }
    }
}
