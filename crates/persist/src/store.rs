//! The durable engine: `DiscEngine` + snapshot + write-ahead log.
//!
//! A store is a directory holding two data files plus a lock:
//!
//! * `engine.snap` — the last checkpoint: full engine state at some
//!   generation `g` (atomically replaced; see [`crate::snapshot`]);
//! * `engine.wal` — the write-ahead log of every ingest batch since that
//!   checkpoint, generations `g+1, g+2, …` (see [`crate::wal`]);
//! * `engine.lock` — the exclusive-writer lock held while any handle is
//!   live, so a second process fails fast with [`Error::Locked`] instead
//!   of interleaving torn WAL records (see [`crate::lock`]).
//!
//! Ingest protocol: validate the batch (a batch the engine would reject
//! is never made durable), append it to the WAL, fsync, *then* mutate
//! the engine. Recovery therefore replays `snapshot ⊕ WAL suffix`
//! through the ordinary [`DiscEngine::ingest`] path and lands on state
//! bit-identical to the uninterrupted run — the crash-equivalence suite
//! pins this at every IO boundary under `--cfg disc_fault`.
//!
//! Failure discipline: the first IO error **poisons** the handle — the
//! on-disk suffix is in an unknown state, so every later mutation
//! returns [`Error::Poisoned`] instead of risking divergence. Reopening
//! the store recovers (torn tails are truncated, applied records are
//! replayed).

use std::path::{Path, PathBuf};

use disc_core::{resolve_shards, DiscEngine, EngineConfig, SaveReport, Saver};
use disc_data::Schema;
use disc_distance::Value;
use disc_obs::counters;

use crate::error::Error;
use crate::lock::StoreLock;
use crate::snapshot::{self, SnapshotData};
use crate::wal::{TornTail, Wal, WalFrame};

/// Store-level knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreOptions {
    /// Automatically checkpoint (snapshot + WAL reset) after this many
    /// generations accumulate in the log; `None` checkpoints only on
    /// explicit [`DurableEngine::checkpoint`] calls.
    pub snapshot_every: Option<u64>,
    /// Shard count for the engine (`Some(0)` = auto, one per core). On
    /// create, `None` means the default shard count; on open, `None`
    /// means the count recorded in the snapshot — the engine's results
    /// are bit-identical either way, so this only tunes parallel query
    /// fan-out.
    pub shards: Option<usize>,
}

/// What [`DurableEngine::open`] found and did to bring the engine back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Generation of the snapshot the engine was restored from.
    pub snapshot_generation: u64,
    /// Complete WAL records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Rows those records carried.
    pub replayed_rows: u64,
    /// The torn tail truncated from the WAL, if the last append was
    /// interrupted.
    pub torn_tail: Option<TornTail>,
    /// The recovered engine's generation.
    pub generation: u64,
    /// The recovered engine's row count.
    pub rows: usize,
}

/// The WAL file within a store directory.
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join("engine.wal")
}

/// The outcome of [`DurableEngine::apply_replicated`] — the follower's
/// exactly-once contract in type form. Every shipped frame lands in
/// exactly one arm, so a reconnect that redelivers frames (or a leader
/// that skipped ahead) can never double-apply or silently drop a batch.
#[derive(Debug)]
pub enum ReplApply {
    /// The frame continued the generation sequence and was durably
    /// applied (WAL append + fsync, then engine ingest). Boxed: a
    /// `SaveReport` is ~2 kB of stats, and this enum travels by value.
    Applied(Box<SaveReport>),
    /// The frame's generation is already part of this store's state — a
    /// redelivery after a reconnect. Nothing was written.
    AlreadyApplied,
    /// The frame skips ahead of this store's generation: intermediate
    /// frames are unavailable (the leader checkpointed past them), so
    /// the caller must resync via
    /// [`DurableEngine::install_snapshot`] before applying further
    /// frames. Nothing was written.
    Gap {
        /// The generation this store could have applied.
        expected: u64,
        /// The generation the frame carried.
        got: u64,
    },
}

/// A [`DiscEngine`] whose state survives crashes; see the
/// [module docs](self).
pub struct DurableEngine {
    engine: DiscEngine,
    wal: Wal,
    dir: PathBuf,
    schema: Schema,
    config: Vec<u8>,
    snapshot_every: Option<u64>,
    last_snapshot: u64,
    poisoned: bool,
    /// Held for the handle's whole lifetime; releasing it (on drop) is
    /// what lets the next opener in. See [`crate::lock`].
    _lock: StoreLock,
}

impl DurableEngine {
    /// Creates a fresh store in `dir` (created if missing) around an
    /// empty engine: a genesis snapshot at generation 0, then an empty
    /// WAL. Refuses a directory that already holds a store.
    ///
    /// `config` is an opaque blob persisted in every snapshot and handed
    /// back to [`DurableEngine::open`]'s saver factory — callers encode
    /// whatever they need to rebuild the saver (the CLI stores its
    /// `(ε, η, κ)` flags there).
    ///
    /// # Panics
    /// Panics if the schema arity differs from the saver's metric arity
    /// (same contract as [`DiscEngine::new`]).
    pub fn create(
        dir: &Path,
        schema: Schema,
        saver: Box<dyn Saver>,
        config: Vec<u8>,
        options: StoreOptions,
    ) -> Result<DurableEngine, Error> {
        if snapshot::snapshot_path(dir).exists() || wal_path(dir).exists() {
            return Err(Error::StoreExists {
                dir: dir.to_path_buf(),
            });
        }
        // Creates the directory as a side effect; taken before any store
        // file exists so a concurrent creator loses cleanly.
        let lock = StoreLock::acquire(dir)?;
        let engine = match options.shards {
            Some(s) => DiscEngine::with_shards(schema.clone(), saver, resolve_shards(s)),
            None => DiscEngine::new(schema.clone(), saver),
        };
        snapshot::write_snapshot(
            dir,
            &SnapshotData {
                schema: schema.clone(),
                config: config.clone(),
                shards: engine.shards() as u32,
                state: engine.export_state(),
            },
        )?;
        let wal = Wal::create(&wal_path(dir))?;
        Ok(DurableEngine {
            engine,
            wal,
            dir: dir.to_path_buf(),
            schema,
            config,
            snapshot_every: options.snapshot_every,
            last_snapshot: 0,
            poisoned: false,
            _lock: lock,
        })
    }

    /// Creates a fresh store from one validated [`EngineConfig`]: the
    /// saver is built from it, the config blob is its durable encoding
    /// (so `disc recover` rebuilds the same saver with no flags), and —
    /// unless [`StoreOptions::shards`] overrides it — the engine is
    /// partitioned across the configured shard count.
    ///
    /// # Errors
    /// [`Error::Engine`] when the configuration fails validation or
    /// mismatches `schema`; otherwise the [`DurableEngine::create`]
    /// contract.
    pub fn create_with_config(
        dir: &Path,
        schema: Schema,
        engine_config: &EngineConfig,
        options: StoreOptions,
    ) -> Result<DurableEngine, Error> {
        let saver = engine_config
            .build_saver_for(&schema)
            .map_err(Error::Engine)?;
        let options = StoreOptions {
            shards: options.shards.or(Some(engine_config.resolved_shards())),
            ..options
        };
        Self::create(dir, schema, saver, engine_config.encode(), options)
    }

    /// Creates a fresh store in `dir` from a shipped snapshot file image
    /// — the follower's bootstrap. The bytes are fully validated, then
    /// installed verbatim as `engine.snap` (so the follower's first
    /// checkpoint base is bit-for-bit the leader's), an empty WAL is
    /// created, and the engine is restored exactly as
    /// [`DurableEngine::open`] would after a crash at that generation.
    ///
    /// Shard count follows [`StoreOptions::shards`] when set, else the
    /// count recorded in the image — either way the restored state is
    /// bit-identical; only query fan-out differs.
    pub fn create_from_snapshot(
        dir: &Path,
        bytes: &[u8],
        make_saver: impl FnOnce(&Schema, &[u8]) -> Result<Box<dyn Saver>, disc_core::Error>,
        options: StoreOptions,
    ) -> Result<DurableEngine, Error> {
        if snapshot::snapshot_path(dir).exists() || wal_path(dir).exists() {
            return Err(Error::StoreExists {
                dir: dir.to_path_buf(),
            });
        }
        let lock = StoreLock::acquire(dir)?;
        let data = snapshot::install_snapshot_bytes(dir, bytes)?;
        let saver = make_saver(&data.schema, &data.config).map_err(Error::Engine)?;
        let shards = options
            .shards
            .map(resolve_shards)
            .unwrap_or(data.shards as usize);
        let schema = data.schema;
        let engine = DiscEngine::restore_with_shards(schema.clone(), saver, data.state, shards)
            .map_err(Error::Engine)?;
        let wal = Wal::create(&wal_path(dir))?;
        let last_snapshot = engine.generation();
        Ok(DurableEngine {
            engine,
            wal,
            dir: dir.to_path_buf(),
            schema,
            config: data.config,
            snapshot_every: options.snapshot_every,
            last_snapshot,
            poisoned: false,
            _lock: lock,
        })
    }

    /// Opens an existing store: loads the snapshot, rebuilds the saver
    /// via `make_saver(schema, config)`, restores the engine, truncates
    /// any torn WAL tail, and replays the surviving records through the
    /// ordinary ingest path.
    ///
    /// Replay is strict: records at or below the snapshot generation are
    /// skipped (the expected artifact of a crash between the snapshot
    /// rename and the WAL reset), but a record that does not continue
    /// the generation sequence exactly is [`Error::Corrupt`].
    pub fn open(
        dir: &Path,
        make_saver: impl FnOnce(&Schema, &[u8]) -> Result<Box<dyn Saver>, disc_core::Error>,
        options: StoreOptions,
    ) -> Result<(DurableEngine, RecoveryReport), Error> {
        if !snapshot::snapshot_path(dir).exists() {
            return Err(Error::StoreMissing {
                dir: dir.to_path_buf(),
            });
        }
        let lock = StoreLock::acquire(dir)?;
        // A crash mid-snapshot can leave a stale staging file; it was
        // never renamed, so it is garbage.
        let tmp = snapshot::snapshot_tmp_path(dir);
        if tmp.exists() {
            std::fs::remove_file(&tmp).map_err(|e| Error::Io {
                op: "remove",
                path: tmp,
                source: e,
            })?;
        }
        let data = snapshot::read_snapshot(dir)?;
        let snapshot_generation = data.state.generation;
        let saver = make_saver(&data.schema, &data.config).map_err(Error::Engine)?;
        // The snapshot remembers the shard count it was written with, so
        // an unconfigured reopen keeps the store's partition layout; an
        // explicit option re-partitions (the image is shard-agnostic).
        let shards = options
            .shards
            .map(resolve_shards)
            .unwrap_or(data.shards as usize);
        let mut engine =
            DiscEngine::restore_with_shards(data.schema.clone(), saver, data.state, shards)
                .map_err(Error::Engine)?;

        // A crash between the genesis snapshot and WAL creation leaves
        // no log; an empty one is equivalent.
        let path = wal_path(dir);
        let (wal, records, torn_tail) = if path.exists() {
            Wal::open(&path)?
        } else {
            (Wal::create(&path)?, Vec::new(), None)
        };

        let mut replayed_records = 0u64;
        let mut replayed_rows = 0u64;
        for record in records {
            if record.generation <= snapshot_generation {
                continue; // already in the snapshot (WAL reset never landed)
            }
            if record.generation != engine.generation() + 1 {
                return Err(Error::Corrupt {
                    path: path.clone(),
                    detail: format!(
                        "generation gap: record {} after engine generation {}",
                        record.generation,
                        engine.generation()
                    ),
                });
            }
            replayed_rows += record.rows.len() as u64;
            engine.ingest(record.rows).map_err(Error::Engine)?;
            replayed_records += 1;
        }
        counters::WAL_RECORDS_REPLAYED.add(replayed_records);
        counters::PERSIST_RECOVERIES.incr();

        let report = RecoveryReport {
            snapshot_generation,
            replayed_records,
            replayed_rows,
            torn_tail,
            generation: engine.generation(),
            rows: engine.len(),
        };
        Ok((
            DurableEngine {
                engine,
                wal,
                dir: dir.to_path_buf(),
                schema: data.schema,
                config: data.config,
                snapshot_every: options.snapshot_every,
                last_snapshot: snapshot_generation,
                poisoned: false,
                _lock: lock,
            },
            report,
        ))
    }

    /// Durably ingests one batch: validate, WAL-append + fsync, then run
    /// the ordinary [`DiscEngine::ingest`]. Auto-checkpoints afterwards
    /// when [`StoreOptions::snapshot_every`] generations have
    /// accumulated.
    ///
    /// # Errors
    /// [`Error::Engine`] for a batch the engine rejects (nothing is
    /// written); [`Error::Io`] when the append fails (the handle is then
    /// poisoned); [`Error::Poisoned`] after any earlier IO failure.
    pub fn ingest(&mut self, batch: Vec<Vec<Value>>) -> Result<SaveReport, Error> {
        if self.poisoned {
            return Err(Error::Poisoned);
        }
        // Validate before the append so a rejected batch never becomes
        // durable — recovery must only replay batches that applied.
        self.engine.validate_batch(&batch).map_err(Error::Engine)?;
        let generation = self.engine.generation() + 1;
        if let Err(e) = self.wal.append(generation, &batch) {
            self.poisoned = true;
            return Err(e);
        }
        let report = match self.engine.ingest(batch) {
            Ok(report) => report,
            Err(e) => {
                // The WAL now holds a record the engine rejected; the
                // store diverged from the log (unreachable given the
                // pre-validation, but fail safe).
                self.poisoned = true;
                return Err(Error::Engine(e));
            }
        };
        if let Some(every) = self.snapshot_every {
            if self.engine.generation() - self.last_snapshot >= every {
                self.checkpoint()?;
            }
        }
        Ok(report)
    }

    /// Applies one replicated WAL frame under the exactly-once rule —
    /// the follower's write path. A frame at or below the current
    /// generation is a redelivery and is skipped; the frame at
    /// `generation + 1` is decoded, validated, durably logged
    /// (byte-for-byte the leader's frame, via
    /// [`Wal::append_frame`]), and ingested; anything further ahead
    /// reports a [`ReplApply::Gap`] so the caller can resync. Because
    /// the apply path is the ordinary durable-ingest path, the
    /// follower's state at generation `g` is bit-identical to the
    /// leader's at `g`, and its own store is a valid resume point after
    /// any crash.
    ///
    /// Auto-checkpoints under the same [`StoreOptions::snapshot_every`]
    /// policy as [`DurableEngine::ingest`].
    ///
    /// # Errors
    /// [`Error::Corrupt`] for a frame that does not decode or carries
    /// rows the engine rejects (a correct leader never ships either);
    /// [`Error::Io`]/[`Error::Poisoned`] with the usual poisoning
    /// discipline.
    pub fn apply_replicated(&mut self, frame: &WalFrame) -> Result<ReplApply, Error> {
        if self.poisoned {
            return Err(Error::Poisoned);
        }
        let expected = self.engine.generation() + 1;
        if frame.generation < expected {
            return Ok(ReplApply::AlreadyApplied);
        }
        if frame.generation > expected {
            return Ok(ReplApply::Gap {
                expected,
                got: frame.generation,
            });
        }
        let bad_frame = |detail: String| Error::Corrupt {
            path: wal_path(&self.dir),
            detail: format!("replicated frame {}: {detail}", frame.generation),
        };
        let record = frame.decode().map_err(bad_frame)?;
        // Same invariant as local ingest: validate before the append so
        // the log never holds a batch the engine rejected.
        self.engine
            .validate_batch(&record.rows)
            .map_err(|e| bad_frame(format!("engine rejects rows: {e}")))?;
        if let Err(e) = self.wal.append_frame(frame) {
            self.poisoned = true;
            return Err(e);
        }
        let report = match self.engine.ingest(record.rows) {
            Ok(report) => report,
            Err(e) => {
                self.poisoned = true;
                return Err(Error::Engine(e));
            }
        };
        if let Some(every) = self.snapshot_every {
            if self.engine.generation() - self.last_snapshot >= every {
                self.checkpoint()?;
            }
        }
        Ok(ReplApply::Applied(Box::new(report)))
    }

    /// Replaces this store's entire state with a shipped snapshot file
    /// image — the follower's resync path after [`ReplApply::Gap`]. The
    /// bytes are validated and must strictly advance the generation
    /// (regressing would un-apply acknowledged batches); then the image
    /// is installed atomically, the WAL is reset, and the engine is
    /// rebuilt in place, keeping the current shard count. Returns the
    /// new generation.
    ///
    /// Crash-safe like [`DurableEngine::checkpoint`]: a crash between
    /// the snapshot install and the WAL reset leaves only records the
    /// new snapshot already covers, which recovery skips.
    pub fn install_snapshot(
        &mut self,
        bytes: &[u8],
        make_saver: impl FnOnce(&Schema, &[u8]) -> Result<Box<dyn Saver>, disc_core::Error>,
    ) -> Result<u64, Error> {
        if self.poisoned {
            return Err(Error::Poisoned);
        }
        let data = snapshot::snapshot_from_bytes(bytes).map_err(|detail| Error::Corrupt {
            path: snapshot::snapshot_path(&self.dir),
            detail,
        })?;
        let generation = data.state.generation;
        if generation <= self.engine.generation() {
            return Err(Error::Corrupt {
                path: snapshot::snapshot_path(&self.dir),
                detail: format!(
                    "snapshot at generation {generation} would regress engine at {}",
                    self.engine.generation()
                ),
            });
        }
        // Build the replacement engine before touching disk, so a saver
        // or restore failure leaves the store untouched and unpoisoned.
        let saver = make_saver(&data.schema, &data.config).map_err(Error::Engine)?;
        let engine = DiscEngine::restore_with_shards(
            data.schema.clone(),
            saver,
            data.state,
            self.engine.shards(),
        )
        .map_err(Error::Engine)?;
        if let Err(e) = snapshot::install_snapshot_bytes(&self.dir, bytes) {
            self.poisoned = true;
            return Err(e);
        }
        if let Err(e) = self.wal.reset() {
            self.poisoned = true;
            return Err(e);
        }
        self.engine = engine;
        self.schema = data.schema;
        self.config = data.config;
        self.last_snapshot = generation;
        Ok(generation)
    }

    /// Writes a snapshot of the current state and resets the WAL. After
    /// a successful checkpoint the store is a single snapshot file plus
    /// an empty log.
    pub fn checkpoint(&mut self) -> Result<(), Error> {
        if self.poisoned {
            return Err(Error::Poisoned);
        }
        let data = SnapshotData {
            schema: self.schema.clone(),
            config: self.config.clone(),
            shards: self.engine.shards() as u32,
            state: self.engine.export_state(),
        };
        if let Err(e) = snapshot::write_snapshot(&self.dir, &data) {
            self.poisoned = true;
            return Err(e);
        }
        // Crash window here is safe: recovery skips WAL records at or
        // below the snapshot generation.
        if let Err(e) = self.wal.reset() {
            self.poisoned = true;
            return Err(e);
        }
        self.last_snapshot = self.engine.generation();
        Ok(())
    }

    /// The underlying engine (read-only; mutate through
    /// [`DurableEngine::ingest`]).
    pub fn engine(&self) -> &DiscEngine {
        &self.engine
    }

    /// The engine generation (successful ingests since empty).
    pub fn generation(&self) -> u64 {
        self.engine.generation()
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// True once an IO failure has disabled further mutation.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Consumes the handle, returning the in-memory engine (for
    /// exporting the dataset after a final checkpoint). Releases the
    /// store lock.
    pub fn into_engine(self) -> DiscEngine {
        self.engine
    }

    /// Graceful shutdown: checkpoint (snapshot the final state and reset
    /// the WAL), release the store lock, and hand back the in-memory
    /// engine. After a successful close the store reopens with zero
    /// records to replay — this is the serving layer's shutdown WAL
    /// handoff.
    ///
    /// # Errors
    /// Returns the checkpoint failure (with the engine discarded) if the
    /// final snapshot cannot be written; every acknowledged ingest is
    /// still durable in the WAL, so a subsequent open loses nothing.
    pub fn close(mut self) -> Result<DiscEngine, Error> {
        self.checkpoint()?;
        Ok(self.engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_core::{DistanceConstraints, SaverConfig};
    use disc_distance::TupleDistance;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_store(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "disc_persist_store_tests/{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn saver() -> Box<dyn Saver> {
        Box::new(
            SaverConfig::new(DistanceConstraints::new(0.5, 4), TupleDistance::numeric(2))
                .build_approx()
                .unwrap(),
        )
    }

    fn make_saver(schema: &Schema, _config: &[u8]) -> Result<Box<dyn Saver>, disc_core::Error> {
        assert_eq!(schema.arity(), 2);
        Ok(saver())
    }

    fn grid_rows() -> Vec<Vec<Value>> {
        let mut rows = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                rows.push(vec![Value::Num(0.2 * i as f64), Value::Num(0.2 * j as f64)]);
            }
        }
        rows.push(vec![Value::Num(0.5), Value::Num(30.0)]);
        rows
    }

    #[test]
    fn create_ingest_reopen_is_bit_identical() {
        let dir = temp_store("roundtrip");
        let mut store = DurableEngine::create(
            &dir,
            Schema::numeric(2),
            saver(),
            b"cfg".to_vec(),
            StoreOptions::default(),
        )
        .unwrap();
        let rows = grid_rows();
        for chunk in rows.chunks(10) {
            store.ingest(chunk.to_vec()).unwrap();
        }
        let live_state = store.engine().export_state();
        drop(store);

        let (reopened, report) =
            DurableEngine::open(&dir, make_saver, StoreOptions::default()).unwrap();
        assert_eq!(report.snapshot_generation, 0);
        assert_eq!(report.replayed_records, 4);
        assert_eq!(report.replayed_rows, rows.len() as u64);
        assert_eq!(report.torn_tail, None);
        assert_eq!(report.generation, 4);
        assert_eq!(reopened.engine().export_state(), live_state);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_resets_wal_and_preserves_state() {
        let dir = temp_store("checkpoint");
        let mut store = DurableEngine::create(
            &dir,
            Schema::numeric(2),
            saver(),
            Vec::new(),
            StoreOptions::default(),
        )
        .unwrap();
        let rows = grid_rows();
        store.ingest(rows[..20].to_vec()).unwrap();
        store.checkpoint().unwrap();
        store.ingest(rows[20..].to_vec()).unwrap();
        let live_state = store.engine().export_state();
        drop(store);

        let (reopened, report) =
            DurableEngine::open(&dir, make_saver, StoreOptions::default()).unwrap();
        assert_eq!(report.snapshot_generation, 1);
        assert_eq!(report.replayed_records, 1, "checkpointed records are gone");
        assert_eq!(reopened.engine().export_state(), live_state);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn auto_checkpoint_fires_every_n_generations() {
        let dir = temp_store("auto");
        let opts = StoreOptions {
            snapshot_every: Some(2),
            ..StoreOptions::default()
        };
        let mut store =
            DurableEngine::create(&dir, Schema::numeric(2), saver(), Vec::new(), opts).unwrap();
        let rows = grid_rows();
        for chunk in rows.chunks(8) {
            store.ingest(chunk.to_vec()).unwrap();
        }
        drop(store);
        // 5 ingests with snapshot_every=2 → checkpoints at generations 2
        // and 4; the log holds only generation 5.
        let (_, report) = DurableEngine::open(&dir, make_saver, opts).unwrap();
        assert_eq!(report.snapshot_generation, 4);
        assert_eq!(report.replayed_records, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_count_survives_reopen_and_can_be_overridden() {
        let dir = temp_store("shards");
        let mut store = DurableEngine::create(
            &dir,
            Schema::numeric(2),
            saver(),
            Vec::new(),
            StoreOptions {
                shards: Some(4),
                ..StoreOptions::default()
            },
        )
        .unwrap();
        assert_eq!(store.engine().shards(), 4);
        store.ingest(grid_rows()).unwrap();
        let live_state = store.engine().export_state();
        drop(store);

        // Unconfigured reopen keeps the snapshot's shard count.
        let (reopened, _) = DurableEngine::open(&dir, make_saver, StoreOptions::default()).unwrap();
        assert_eq!(reopened.engine().shards(), 4);
        assert_eq!(reopened.engine().export_state(), live_state);
        drop(reopened);

        // An explicit option re-partitions without changing the state.
        let (reopened, _) = DurableEngine::open(
            &dir,
            make_saver,
            StoreOptions {
                shards: Some(1),
                ..StoreOptions::default()
            },
        )
        .unwrap();
        assert_eq!(reopened.engine().shards(), 1);
        assert_eq!(reopened.engine().export_state(), live_state);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_with_config_round_trips_through_recovery() {
        let dir = temp_store("withconfig");
        let config = EngineConfig::new(2, 0.5, 4).shards(3);
        let mut store = DurableEngine::create_with_config(
            &dir,
            Schema::numeric(2),
            &config,
            StoreOptions::default(),
        )
        .unwrap();
        assert_eq!(store.engine().shards(), 3);
        store.ingest(grid_rows()).unwrap();
        let live_state = store.engine().export_state();
        drop(store);
        // The stored blob alone rebuilds the saver.
        let (reopened, _) = DurableEngine::open(
            &dir,
            |schema, blob| EngineConfig::decode(blob)?.build_saver_for(schema),
            StoreOptions::default(),
        )
        .unwrap();
        assert_eq!(reopened.engine().shards(), 3);
        assert_eq!(reopened.engine().export_state(), live_state);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_existing_store() {
        let dir = temp_store("exists");
        DurableEngine::create(
            &dir,
            Schema::numeric(2),
            saver(),
            Vec::new(),
            StoreOptions::default(),
        )
        .unwrap();
        let err = DurableEngine::create(
            &dir,
            Schema::numeric(2),
            saver(),
            Vec::new(),
            StoreOptions::default(),
        )
        .map(|_| ())
        .unwrap_err();
        assert!(matches!(err, Error::StoreExists { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_missing_store_fails_cleanly() {
        let dir = temp_store("missing");
        let err = DurableEngine::open(&dir, make_saver, StoreOptions::default())
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, Error::StoreMissing { .. }), "{err}");
    }

    #[test]
    fn invalid_batch_is_rejected_without_becoming_durable() {
        let dir = temp_store("reject");
        let mut store = DurableEngine::create(
            &dir,
            Schema::numeric(2),
            saver(),
            Vec::new(),
            StoreOptions::default(),
        )
        .unwrap();
        store.ingest(grid_rows()[..10].to_vec()).unwrap();
        let err = store
            .ingest(vec![vec![Value::Num(f64::NAN), Value::Num(0.0)]])
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, Error::Engine(_)), "{err}");
        assert!(!store.is_poisoned(), "validation failure must not poison");
        let generation = store.generation();
        drop(store);
        let (reopened, report) =
            DurableEngine::open(&dir, make_saver, StoreOptions::default()).unwrap();
        assert_eq!(report.replayed_records, 1, "rejected batch never logged");
        assert_eq!(reopened.generation(), generation);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn second_live_handle_is_locked_out() {
        let dir = temp_store("locked");
        let store = DurableEngine::create(
            &dir,
            Schema::numeric(2),
            saver(),
            Vec::new(),
            StoreOptions::default(),
        )
        .unwrap();
        // A second session pointed at the same store must fail fast with
        // the typed lock error, not interleave WAL appends.
        let err = DurableEngine::open(&dir, make_saver, StoreOptions::default())
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, Error::Locked { .. }), "{err}");
        drop(store);
        // Dropping the first handle releases the lock.
        let (_reopened, _) =
            DurableEngine::open(&dir, make_saver, StoreOptions::default()).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn close_checkpoints_and_releases_the_lock() {
        let dir = temp_store("close");
        let mut store = DurableEngine::create(
            &dir,
            Schema::numeric(2),
            saver(),
            Vec::new(),
            StoreOptions::default(),
        )
        .unwrap();
        store.ingest(grid_rows()).unwrap();
        let live_state = store.engine().export_state();
        let engine = store.close().unwrap();
        assert_eq!(engine.export_state(), live_state);
        // The final checkpoint absorbed the log: reopen replays nothing
        // and lands on the identical state.
        let (reopened, report) =
            DurableEngine::open(&dir, make_saver, StoreOptions::default()).unwrap();
        assert_eq!(report.replayed_records, 0);
        assert_eq!(report.snapshot_generation, 1);
        assert_eq!(reopened.engine().export_state(), live_state);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn follower_bootstraps_and_applies_replicated_frames() {
        let leader_dir = temp_store("repl-leader");
        let follower_dir = temp_store("repl-follower");
        let mut leader = DurableEngine::create(
            &leader_dir,
            Schema::numeric(2),
            saver(),
            b"cfg".to_vec(),
            StoreOptions::default(),
        )
        .unwrap();
        let rows = grid_rows();
        leader.ingest(rows[..12].to_vec()).unwrap();
        leader.checkpoint().unwrap();

        // Bootstrap: ship the leader's snapshot image verbatim.
        let (bytes, _) = snapshot::read_snapshot_bytes(&leader_dir).unwrap();
        let mut follower = DurableEngine::create_from_snapshot(
            &follower_dir,
            &bytes,
            make_saver,
            StoreOptions::default(),
        )
        .unwrap();
        assert_eq!(follower.generation(), 1);
        assert_eq!(
            follower.engine().export_state(),
            leader.engine().export_state()
        );

        // Catch-up: tail the leader's log and apply each frame once.
        leader.ingest(rows[12..24].to_vec()).unwrap();
        leader.ingest(rows[24..].to_vec()).unwrap();
        let mut tailer = crate::wal::WalTailer::new(&wal_path(&leader_dir));
        let frames = tailer.poll_after(follower.generation(), 64).unwrap();
        assert_eq!(frames.len(), 2);
        for frame in &frames {
            assert!(matches!(
                follower.apply_replicated(frame).unwrap(),
                ReplApply::Applied(_)
            ));
        }
        assert_eq!(
            follower.engine().export_state(),
            leader.engine().export_state()
        );

        // A redelivery after a reconnect is a silent no-op…
        assert!(matches!(
            follower.apply_replicated(&frames[0]).unwrap(),
            ReplApply::AlreadyApplied
        ));
        // …and a skipped-ahead frame demands a resync, applying nothing.
        let ahead = WalFrame::encode(99, &rows[..1]);
        assert!(matches!(
            follower.apply_replicated(&ahead).unwrap(),
            ReplApply::Gap {
                expected: 4,
                got: 99
            }
        ));
        assert_eq!(follower.generation(), 3);

        // The follower's own store is a valid resume point: reopen
        // replays its log and lands on the leader's exact state.
        drop(follower);
        let (reopened, report) =
            DurableEngine::open(&follower_dir, make_saver, StoreOptions::default()).unwrap();
        assert_eq!(report.replayed_records, 2);
        assert_eq!(
            reopened.engine().export_state(),
            leader.engine().export_state()
        );
        std::fs::remove_dir_all(&leader_dir).ok();
        std::fs::remove_dir_all(&follower_dir).ok();
    }

    #[test]
    fn install_snapshot_resyncs_a_lagging_follower() {
        let leader_dir = temp_store("resync-leader");
        let follower_dir = temp_store("resync-follower");
        let mut leader = DurableEngine::create(
            &leader_dir,
            Schema::numeric(2),
            saver(),
            Vec::new(),
            StoreOptions::default(),
        )
        .unwrap();
        let rows = grid_rows();
        leader.ingest(rows[..12].to_vec()).unwrap();
        leader.checkpoint().unwrap();
        let (bytes, _) = snapshot::read_snapshot_bytes(&leader_dir).unwrap();
        let mut follower = DurableEngine::create_from_snapshot(
            &follower_dir,
            &bytes,
            make_saver,
            StoreOptions::default(),
        )
        .unwrap();

        // The leader moves on and checkpoints: the generation-2 frame is
        // gone from its log, so the follower can only see generation 3.
        leader.ingest(rows[12..24].to_vec()).unwrap();
        leader.checkpoint().unwrap();
        leader.ingest(rows[24..].to_vec()).unwrap();
        let mut tailer = crate::wal::WalTailer::new(&wal_path(&leader_dir));
        let frames = tailer.poll_after(follower.generation(), 64).unwrap();
        assert_eq!(frames.len(), 1);
        assert!(matches!(
            follower.apply_replicated(&frames[0]).unwrap(),
            ReplApply::Gap {
                expected: 2,
                got: 3
            }
        ));

        // Resync from the leader's current snapshot, then the pending
        // frame continues the sequence.
        let (bytes, data) = snapshot::read_snapshot_bytes(&leader_dir).unwrap();
        assert_eq!(data.state.generation, 2);
        assert_eq!(follower.install_snapshot(&bytes, make_saver).unwrap(), 2);
        assert!(matches!(
            follower.apply_replicated(&frames[0]).unwrap(),
            ReplApply::Applied(_)
        ));
        assert_eq!(
            follower.engine().export_state(),
            leader.engine().export_state()
        );

        // A stale snapshot can never regress acknowledged state.
        let err = follower.install_snapshot(&bytes, make_saver).unwrap_err();
        assert!(matches!(err, Error::Corrupt { .. }), "{err}");
        assert_eq!(follower.generation(), 3);
        std::fs::remove_dir_all(&leader_dir).ok();
        std::fs::remove_dir_all(&follower_dir).ok();
    }

    #[test]
    fn stale_snapshot_tmp_is_cleaned_on_open() {
        let dir = temp_store("staletmp");
        let mut store = DurableEngine::create(
            &dir,
            Schema::numeric(2),
            saver(),
            Vec::new(),
            StoreOptions::default(),
        )
        .unwrap();
        store.ingest(grid_rows()[..8].to_vec()).unwrap();
        drop(store);
        let tmp = snapshot::snapshot_tmp_path(&dir);
        std::fs::write(&tmp, b"half a snapshot").unwrap();
        let (_, report) = DurableEngine::open(&dir, make_saver, StoreOptions::default()).unwrap();
        assert_eq!(report.replayed_records, 1);
        assert!(!tmp.exists(), "stale staging file must be removed");
        std::fs::remove_dir_all(&dir).ok();
    }
}
