//! The persistence layer's error type.

use std::fmt;
use std::path::PathBuf;

/// Why a durable-store operation failed.
#[derive(Debug)]
pub enum Error {
    /// An operating-system IO operation failed.
    Io {
        /// The operation that failed (`"write"`, `"fsync"`, `"rename"`, …).
        op: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// On-disk bytes that no crash could produce: a bad magic number or
    /// version, a checksum-valid record that does not decode, or a
    /// generation sequence with a gap. Torn *tails* are not corruption —
    /// they are expected crash artifacts, truncated and reported via
    /// [`RecoveryReport::torn_tail`](crate::RecoveryReport::torn_tail).
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
    /// The engine rejected an operation (invalid batch, inconsistent
    /// restored state, saver construction failure).
    Engine(disc_core::Error),
    /// [`DurableEngine::create`](crate::DurableEngine::create) refused to
    /// overwrite an existing store.
    StoreExists {
        /// The store directory.
        dir: PathBuf,
    },
    /// [`DurableEngine::open`](crate::DurableEngine::open) found no store
    /// (the snapshot file is missing).
    StoreMissing {
        /// The store directory.
        dir: PathBuf,
    },
    /// A previous IO failure left the handle in an unknown on-disk state;
    /// all further mutations are refused. Reopening the store recovers.
    Poisoned,
    /// Another live process holds the store's exclusive lock
    /// (`engine.lock`). Two writers interleaving WAL appends would tear
    /// the generation sequence, so the second opener fails fast instead.
    Locked {
        /// The store directory.
        dir: PathBuf,
        /// PID recorded in the lock file, when readable.
        holder: Option<u32>,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io { op, path, source } => {
                write!(f, "{op} failed on {}: {source}", path.display())
            }
            Error::Corrupt { path, detail } => {
                write!(f, "corrupt store file {}: {detail}", path.display())
            }
            Error::Engine(e) => write!(f, "engine error: {e}"),
            Error::StoreExists { dir } => {
                write!(
                    f,
                    "refusing to overwrite existing store in {}",
                    dir.display()
                )
            }
            Error::StoreMissing { dir } => {
                write!(f, "no store found in {}", dir.display())
            }
            Error::Poisoned => write!(
                f,
                "store handle poisoned by an earlier IO failure; reopen to recover"
            ),
            Error::Locked { dir, holder } => {
                write!(f, "store {} is locked", dir.display())?;
                match holder {
                    Some(pid) => write!(f, " by live process {pid}"),
                    None => write!(f, " by another process"),
                }
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            Error::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<disc_core::Error> for Error {
    fn from(e: disc_core::Error) -> Self {
        Error::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_path() {
        let e = Error::Io {
            op: "fsync",
            path: PathBuf::from("/tmp/store/engine.wal"),
            source: std::io::Error::other("disk on fire"),
        };
        let msg = e.to_string();
        assert!(msg.contains("fsync"), "{msg}");
        assert!(msg.contains("engine.wal"), "{msg}");
        assert!(msg.contains("disk on fire"), "{msg}");

        let e = Error::Corrupt {
            path: PathBuf::from("engine.snap"),
            detail: "bad magic".into(),
        };
        assert!(e.to_string().contains("bad magic"), "{e}");
    }
}
