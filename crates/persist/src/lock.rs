//! Exclusive advisory locking for store directories.
//!
//! Two live handles appending to the same write-ahead log would
//! interleave records and tear the generation sequence, so every
//! [`DurableEngine`](crate::DurableEngine) holds a [`StoreLock`] for its
//! whole lifetime: a `engine.lock` file created with `create_new` (the
//! atomic exists-check-plus-create the filesystem gives us without any
//! OS-specific flock machinery) holding the owner's PID.
//!
//! A crash leaves the lock file behind; [`StoreLock::acquire`] treats a
//! lock whose recorded PID no longer maps to a live process as *stale*
//! and steals it, so recovery after a crash never needs manual cleanup.
//! A second live process gets [`Error::Locked`] immediately — failing
//! fast is the whole point.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::error::Error;

/// The lock file within a store directory.
pub fn lock_path(dir: &Path) -> PathBuf {
    dir.join("engine.lock")
}

/// Exclusive ownership of a store directory for the lifetime of the
/// value; released (the lock file removed) on drop. See the
/// [module docs](self).
#[derive(Debug)]
pub struct StoreLock {
    path: PathBuf,
}

/// Best-effort liveness probe for the PID recorded in a lock file. On
/// Linux `/proc/<pid>` exists exactly while the process does; elsewhere
/// assume the holder is alive (never steal — a false "dead" verdict
/// risks the torn interleaving the lock exists to prevent).
fn process_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

impl StoreLock {
    /// Acquires the exclusive lock for `dir` (created if missing),
    /// stealing a stale lock left by a dead process.
    ///
    /// # Errors
    /// [`Error::Locked`] when a live process holds the lock;
    /// [`Error::Io`] when the directory or lock file cannot be written.
    pub fn acquire(dir: &Path) -> Result<StoreLock, Error> {
        fs::create_dir_all(dir).map_err(|e| Error::Io {
            op: "create_dir",
            path: dir.to_path_buf(),
            source: e,
        })?;
        let path = lock_path(dir);
        match Self::try_create(&path) {
            Ok(lock) => Ok(lock),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let holder = fs::read_to_string(&path)
                    .ok()
                    .and_then(|s| s.trim().parse::<u32>().ok());
                let stale = match holder {
                    Some(pid) => pid != std::process::id() && !process_alive(pid),
                    // An empty or unparsable lock file is a torn write
                    // from a crash mid-create: nothing live wrote it.
                    None => true,
                };
                if !stale {
                    return Err(Error::Locked {
                        dir: dir.to_path_buf(),
                        holder,
                    });
                }
                fs::remove_file(&path).map_err(|e| Error::Io {
                    op: "remove",
                    path: path.clone(),
                    source: e,
                })?;
                // One retry: if another process won the race to recreate
                // it, the store is genuinely locked now.
                match Self::try_create(&path) {
                    Ok(lock) => Ok(lock),
                    Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => Err(Error::Locked {
                        dir: dir.to_path_buf(),
                        holder: None,
                    }),
                    Err(e) => Err(Error::Io {
                        op: "create",
                        path,
                        source: e,
                    }),
                }
            }
            Err(e) => Err(Error::Io {
                op: "create",
                path,
                source: e,
            }),
        }
    }

    fn try_create(path: &Path) -> std::io::Result<StoreLock> {
        let mut file = fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)?;
        // PID first, then make it visible: readers tolerate a torn or
        // empty file (treated as stale), so no fsync is needed here.
        writeln!(file, "{}", std::process::id())?;
        Ok(StoreLock {
            path: path.to_path_buf(),
        })
    }

    /// The lock file this value owns.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        // Best effort: a failed removal degrades to a stale lock that
        // the next acquire steals.
        let _ = fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "disc_persist_lock_tests/{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn second_acquire_fails_fast_with_the_holder_pid() {
        let dir = temp_dir("exclusive");
        let lock = StoreLock::acquire(&dir).unwrap();
        let err = StoreLock::acquire(&dir).map(|_| ()).unwrap_err();
        match err {
            Error::Locked { dir: d, holder } => {
                assert_eq!(d, dir);
                assert_eq!(holder, Some(std::process::id()));
            }
            other => panic!("expected Locked, got {other}"),
        }
        drop(lock);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drop_releases_the_lock() {
        let dir = temp_dir("release");
        let lock = StoreLock::acquire(&dir).unwrap();
        let path = lock.path().to_path_buf();
        assert!(path.exists());
        drop(lock);
        assert!(!path.exists(), "lock file must be removed on drop");
        let _second = StoreLock::acquire(&dir).unwrap();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_lock_from_a_dead_process_is_stolen() {
        let dir = temp_dir("stale");
        fs::create_dir_all(&dir).unwrap();
        // PIDs are well below u32::MAX on every supported platform; this
        // one cannot name a live process.
        fs::write(lock_path(&dir), format!("{}\n", u32::MAX)).unwrap();
        let lock = StoreLock::acquire(&dir).unwrap();
        drop(lock);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_empty_lock_file_is_stolen() {
        let dir = temp_dir("torn");
        fs::create_dir_all(&dir).unwrap();
        fs::write(lock_path(&dir), b"").unwrap();
        let _lock = StoreLock::acquire(&dir).unwrap();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn locked_error_mentions_the_directory() {
        let dir = temp_dir("display");
        let _lock = StoreLock::acquire(&dir).unwrap();
        let err = StoreLock::acquire(&dir).map(|_| ()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("locked"), "{msg}");
        assert!(msg.contains(&std::process::id().to_string()), "{msg}");
        fs::remove_dir_all(&dir).ok();
    }
}
