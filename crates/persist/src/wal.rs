//! The write-ahead log of ingest batches.
//!
//! File layout: an 8-byte magic header (`DISCWAL1`) followed by
//! length-prefixed, checksummed records:
//!
//! ```text
//! [u32 payload_len][u32 crc32(payload)][payload]
//! payload = [u64 generation][encoded rows]   (disc_data::binary)
//! ```
//!
//! Append protocol: the record is written and fsynced **before** the
//! engine mutates (`DurableEngine::ingest` appends first), so every
//! applied ingest is durable. A crash mid-append leaves a *torn tail* —
//! a record whose length prefix, payload bytes, or checksum is
//! incomplete. [`Wal::open`] detects the tear (any framing or CRC
//! failure), truncates the file back to the last complete record, and
//! reports it as a [`TornTail`] — an expected crash artifact, not
//! corruption. Only states no crash can produce (wrong magic, a
//! checksum-valid payload that does not decode) are
//! [`Error::Corrupt`].

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use disc_data::binary::{self, Reader};
use disc_distance::Value;
use disc_obs::counters;

use crate::crc::crc32;
use crate::error::Error;
use crate::io;

/// First 8 bytes of every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"DISCWAL1";

/// Bytes of framing per record: `u32` length + `u32` checksum.
pub const RECORD_HEADER_LEN: usize = 8;

/// One complete, checksum-verified WAL record.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// The engine generation this batch produced when ingested.
    pub generation: u64,
    /// The ingested batch, bit-identical to what was appended.
    pub rows: Vec<Vec<Value>>,
}

/// An incomplete final record found (and truncated away) by
/// [`Wal::open`] — the expected artifact of a crash mid-append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornTail {
    /// File length after truncating back to the last complete record.
    pub valid_len: u64,
    /// Bytes of incomplete record dropped.
    pub dropped_bytes: u64,
}

/// An open write-ahead log positioned for appends.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
}

impl Wal {
    /// Creates a fresh, empty log at `path` (truncating any existing
    /// file), writes the magic header, and fsyncs.
    pub fn create(path: &Path) -> Result<Wal, Error> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| Error::Io {
                op: "create",
                path: path.to_path_buf(),
                source: e,
            })?;
        io::write_all(&mut file, WAL_MAGIC, path)?;
        io::fsync(&file, path)?;
        counters::WAL_FSYNCS.incr();
        counters::WAL_BYTES_WRITTEN.add(WAL_MAGIC.len() as u64);
        Ok(Wal {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Opens an existing log, verifying every record and truncating a
    /// torn tail if the last append was interrupted. Returns the log
    /// (positioned for appends), the complete records in file order, and
    /// the torn-tail report if one was removed.
    ///
    /// A file shorter than the magic header whose bytes are a *prefix*
    /// of the magic is treated as a crash during [`Wal::create`] and
    /// rewritten; any other header mismatch is [`Error::Corrupt`].
    pub fn open(path: &Path) -> Result<(Wal, Vec<WalRecord>, Option<TornTail>), Error> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| Error::Io {
                op: "open",
                path: path.to_path_buf(),
                source: e,
            })?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(|e| Error::Io {
            op: "read",
            path: path.to_path_buf(),
            source: e,
        })?;

        if bytes.len() < WAL_MAGIC.len() {
            if *bytes != WAL_MAGIC[..bytes.len()] {
                return Err(Error::Corrupt {
                    path: path.to_path_buf(),
                    detail: format!("short header is not a prefix of {WAL_MAGIC:?}"),
                });
            }
            // Crash during create: rewrite the header in place.
            let dropped = bytes.len() as u64;
            io::truncate(&file, 0, path)?;
            file.seek(SeekFrom::Start(0)).map_err(|e| Error::Io {
                op: "seek",
                path: path.to_path_buf(),
                source: e,
            })?;
            io::write_all(&mut file, WAL_MAGIC, path)?;
            io::fsync(&file, path)?;
            counters::WAL_FSYNCS.incr();
            counters::WAL_TORN_TAILS.incr();
            file.seek(SeekFrom::Start(WAL_MAGIC.len() as u64))
                .map_err(|e| Error::Io {
                    op: "seek",
                    path: path.to_path_buf(),
                    source: e,
                })?;
            return Ok((
                Wal {
                    file,
                    path: path.to_path_buf(),
                },
                Vec::new(),
                Some(TornTail {
                    valid_len: WAL_MAGIC.len() as u64,
                    dropped_bytes: dropped,
                }),
            ));
        }
        if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(Error::Corrupt {
                path: path.to_path_buf(),
                detail: format!("bad magic {:?}", &bytes[..WAL_MAGIC.len()]),
            });
        }

        let mut records = Vec::new();
        let mut pos = WAL_MAGIC.len();
        // `pos` always sits at the end of the last complete record; any
        // framing or checksum failure past it is a torn tail.
        let torn = loop {
            if pos == bytes.len() {
                break None;
            }
            let rest = &bytes[pos..];
            if rest.len() < RECORD_HEADER_LEN {
                break Some("incomplete record header");
            }
            let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
            let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
            let Some(payload) = rest.get(RECORD_HEADER_LEN..RECORD_HEADER_LEN + len) else {
                break Some("incomplete record payload");
            };
            if crc32(payload) != crc {
                break Some("record checksum mismatch");
            }
            // The checksum matched, so these are the exact bytes that
            // were appended; a decode failure here is real corruption.
            let mut r = Reader::new(payload);
            let record = (|| -> Result<WalRecord, binary::DecodeError> {
                let generation = r.u64("record generation")?;
                let rows = binary::decode_rows(&mut r)?;
                Ok(WalRecord { generation, rows })
            })()
            .map_err(|e| Error::Corrupt {
                path: path.to_path_buf(),
                detail: format!("checksum-valid record does not decode: {e}"),
            })?;
            if !r.is_exhausted() {
                return Err(Error::Corrupt {
                    path: path.to_path_buf(),
                    detail: format!("record carries {} trailing bytes", r.remaining()),
                });
            }
            records.push(record);
            pos += RECORD_HEADER_LEN + len;
        };

        let torn = match torn {
            None => None,
            Some(_why) => {
                let valid_len = pos as u64;
                let dropped_bytes = (bytes.len() - pos) as u64;
                io::truncate(&file, valid_len, path)?;
                io::fsync(&file, path)?;
                counters::WAL_FSYNCS.incr();
                counters::WAL_TORN_TAILS.incr();
                Some(TornTail {
                    valid_len,
                    dropped_bytes,
                })
            }
        };
        file.seek(SeekFrom::Start(pos as u64))
            .map_err(|e| Error::Io {
                op: "seek",
                path: path.to_path_buf(),
                source: e,
            })?;
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
            },
            records,
            torn,
        ))
    }

    /// Appends one record and fsyncs. On return the batch is durable;
    /// the caller may mutate the engine.
    pub fn append(&mut self, generation: u64, rows: &[Vec<Value>]) -> Result<(), Error> {
        let mut payload = Vec::new();
        binary::put_u64(&mut payload, generation);
        binary::encode_rows(&mut payload, rows);
        let mut frame = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        binary::put_u32(&mut frame, payload.len() as u32);
        binary::put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        io::write_all(&mut self.file, &frame, &self.path)?;
        io::fsync(&self.file, &self.path)?;
        counters::WAL_APPENDS.incr();
        counters::WAL_BYTES_WRITTEN.add(frame.len() as u64);
        counters::WAL_FSYNCS.incr();
        Ok(())
    }

    /// Drops every record, keeping the magic header — called after a
    /// snapshot makes the logged generations redundant. Crash-safe in
    /// either direction: if the truncate never lands, recovery simply
    /// skips records at or below the snapshot generation.
    pub fn reset(&mut self) -> Result<(), Error> {
        io::truncate(&self.file, WAL_MAGIC.len() as u64, &self.path)?;
        io::fsync(&self.file, &self.path)?;
        counters::WAL_FSYNCS.incr();
        self.file
            .seek(SeekFrom::Start(WAL_MAGIC.len() as u64))
            .map_err(|e| Error::Io {
                op: "seek",
                path: self.path.to_path_buf(),
                source: e,
            })?;
        Ok(())
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_wal(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join("disc_persist_wal_tests");
        std::fs::create_dir_all(&dir).expect("mk tempdir");
        dir.join(format!(
            "{tag}-{}-{}.wal",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn rows(xs: &[f64]) -> Vec<Vec<Value>> {
        xs.iter().map(|&x| vec![Value::Num(x)]).collect()
    }

    #[test]
    fn append_and_reopen_roundtrip() {
        let path = temp_wal("roundtrip");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(1, &rows(&[1.0, 2.0])).unwrap();
        wal.append(2, &rows(&[-0.0])).unwrap();
        drop(wal);

        let (mut wal, records, torn) = Wal::open(&path).unwrap();
        assert!(torn.is_none());
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].generation, 1);
        assert_eq!(records[0].rows, rows(&[1.0, 2.0]));
        assert_eq!(records[1].generation, 2);
        assert_eq!(
            records[1].rows[0][0].as_num().unwrap().to_bits(),
            (-0.0f64).to_bits()
        );

        // Appending after reopen lands after the existing records.
        wal.append(3, &rows(&[7.0])).unwrap();
        drop(wal);
        let (_, records, torn) = Wal::open(&path).unwrap();
        assert!(torn.is_none());
        assert_eq!(records.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let path = temp_wal("torn");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(1, &rows(&[1.0])).unwrap();
        wal.append(2, &rows(&[2.0])).unwrap();
        drop(wal);
        let full = std::fs::read(&path).unwrap();

        // Chop 5 bytes off the final record: framing is incomplete.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let (_, records, torn) = Wal::open(&path).unwrap();
        assert_eq!(records.len(), 1, "only the first record survives");
        let torn = torn.expect("tear must be reported");
        assert_eq!(
            torn.dropped_bytes as usize,
            full.len() - 5 - torn.valid_len as usize
        );
        // The truncate is durable: a second open sees a clean log.
        let (_, records, torn) = Wal::open(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert!(torn.is_none(), "tail already truncated");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_payload_byte_is_a_torn_tail() {
        let path = temp_wal("crcflip");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(1, &rows(&[1.0])).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let (_, records, torn) = Wal::open(&path).unwrap();
        assert!(records.is_empty());
        assert!(torn.is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn partial_magic_is_rewritten() {
        let path = temp_wal("header");
        std::fs::write(&path, &WAL_MAGIC[..3]).unwrap();
        let (_, records, torn) = Wal::open(&path).unwrap();
        assert!(records.is_empty());
        assert_eq!(torn.unwrap().dropped_bytes, 3);
        assert_eq!(std::fs::read(&path).unwrap(), WAL_MAGIC);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_is_corrupt() {
        let path = temp_wal("badmagic");
        std::fs::write(&path, b"NOTAWAL!extra").unwrap();
        let err = Wal::open(&path).map(|_| ()).unwrap_err();
        assert!(matches!(err, Error::Corrupt { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_keeps_header_and_drops_records() {
        let path = temp_wal("reset");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(1, &rows(&[1.0])).unwrap();
        wal.reset().unwrap();
        wal.append(9, &rows(&[9.0])).unwrap();
        drop(wal);
        let (_, records, torn) = Wal::open(&path).unwrap();
        assert!(torn.is_none());
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].generation, 9);
        std::fs::remove_file(&path).ok();
    }
}
