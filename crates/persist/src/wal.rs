//! The write-ahead log of ingest batches.
//!
//! File layout: an 8-byte magic header (`DISCWAL1`) followed by
//! length-prefixed, checksummed records:
//!
//! ```text
//! [u32 payload_len][u32 crc32(payload)][payload]
//! payload = [u64 generation][encoded rows]   (disc_data::binary)
//! ```
//!
//! Append protocol: the record is written and fsynced **before** the
//! engine mutates (`DurableEngine::ingest` appends first), so every
//! applied ingest is durable. A crash mid-append leaves a *torn tail* —
//! a record whose length prefix, payload bytes, or checksum is
//! incomplete. [`Wal::open`] detects the tear (any framing or CRC
//! failure), truncates the file back to the last complete record, and
//! reports it as a [`TornTail`] — an expected crash artifact, not
//! corruption. Only states no crash can produce (wrong magic, a
//! checksum-valid payload that does not decode) are
//! [`Error::Corrupt`].
//!
//! # One decoder, three consumers
//!
//! [`WalReader`] is the single frame decoder: it walks a byte image,
//! yields complete checksum-verified [`WalFrame`]s, and reports where
//! and why it stopped ([`WalEnd`]). Recovery ([`Wal::open`] →
//! `disc recover`), the leader-side replication service (shipping raw
//! frames to followers), and the follower's apply loop (decoding
//! shipped frames) all share it, so a frame that recovers locally is
//! byte-for-byte the frame that replicates. [`WalTailer`] layers
//! generation-ordered, resumable polling over a live log file for the
//! leader side: frames at or below an acked generation are filtered
//! out, an incomplete tail ends the poll (it may complete later), and a
//! shrunken file (the WAL reset after a checkpoint) rewinds cleanly.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use disc_data::binary::{self, Reader};
use disc_distance::Value;
use disc_obs::counters;

use crate::crc::crc32;
use crate::error::Error;
use crate::io;

/// First 8 bytes of every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"DISCWAL1";

/// Bytes of framing per record: `u32` length + `u32` checksum.
pub const RECORD_HEADER_LEN: usize = 8;

/// One complete, checksum-verified WAL record.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// The engine generation this batch produced when ingested.
    pub generation: u64,
    /// The ingested batch, bit-identical to what was appended.
    pub rows: Vec<Vec<Value>>,
}

/// One complete WAL frame in wire form: the checksummed payload bytes
/// exactly as they sit in the log file. This is the unit replication
/// ships — a follower re-verifies [`WalFrame::crc`] and decodes with
/// the same [`WalFrame::decode`] recovery uses, so leader and follower
/// can never disagree on a frame's contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalFrame {
    /// The frame's generation (first field of the payload), peeked so
    /// consumers can filter without a full decode.
    pub generation: u64,
    /// CRC-32 of the payload, as stored in the frame header.
    pub crc: u32,
    /// The checksummed payload: `[u64 generation][encoded rows]`.
    pub payload: Vec<u8>,
}

impl WalFrame {
    /// Encodes one batch as a frame (the inverse of [`WalFrame::decode`];
    /// [`Wal::append`] writes exactly these bytes).
    pub fn encode(generation: u64, rows: &[Vec<Value>]) -> WalFrame {
        let mut payload = Vec::new();
        binary::put_u64(&mut payload, generation);
        binary::encode_rows(&mut payload, rows);
        WalFrame {
            generation,
            crc: crc32(&payload),
            payload,
        }
    }

    /// Rebuilds a frame from shipped parts, verifying the checksum and
    /// the generation peek. This is the follower's admission check: a
    /// frame that passes is bit-identical to one the leader logged.
    pub fn from_parts(generation: u64, crc: u32, payload: Vec<u8>) -> Result<WalFrame, String> {
        if crc32(&payload) != crc {
            return Err("frame checksum mismatch".to_string());
        }
        let peeked = peek_generation(&payload)?;
        if peeked != generation {
            return Err(format!(
                "frame generation mismatch: header says {generation}, payload says {peeked}"
            ));
        }
        Ok(WalFrame {
            generation,
            crc,
            payload,
        })
    }

    /// Fully decodes the payload. The checksum already matched, so a
    /// failure here means real corruption, not a torn write.
    pub fn decode(&self) -> Result<WalRecord, String> {
        let mut r = Reader::new(&self.payload);
        let record = (|| -> Result<WalRecord, binary::DecodeError> {
            let generation = r.u64("record generation")?;
            let rows = binary::decode_rows(&mut r)?;
            Ok(WalRecord { generation, rows })
        })()
        .map_err(|e| format!("checksum-valid record does not decode: {e}"))?;
        if !r.is_exhausted() {
            return Err(format!("record carries {} trailing bytes", r.remaining()));
        }
        Ok(record)
    }

    /// The frame as it appears in a log file: header then payload.
    pub fn file_bytes(&self) -> Vec<u8> {
        let mut frame = Vec::with_capacity(RECORD_HEADER_LEN + self.payload.len());
        binary::put_u32(&mut frame, self.payload.len() as u32);
        binary::put_u32(&mut frame, self.crc);
        frame.extend_from_slice(&self.payload);
        frame
    }
}

/// Reads the generation field out of a frame payload without decoding
/// the rows.
fn peek_generation(payload: &[u8]) -> Result<u64, String> {
    let bytes: [u8; 8] = payload
        .get(..8)
        .and_then(|b| b.try_into().ok())
        .ok_or_else(|| format!("payload is only {} bytes, no generation", payload.len()))?;
    Ok(u64::from_le_bytes(bytes))
}

/// Where a [`WalReader`] scan stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalEnd {
    /// Every byte belonged to a complete frame.
    Clean,
    /// The final frame is incomplete (missing header bytes, short
    /// payload, or checksum mismatch) — the expected artifact of a crash
    /// or of reading a file mid-append. Complete frames before the tear
    /// were all yielded.
    Torn {
        /// Why the tail does not parse as a complete frame.
        why: &'static str,
    },
}

/// An incomplete final record found (and truncated away) by
/// [`Wal::open`] — the expected artifact of a crash mid-append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornTail {
    /// File length after truncating back to the last complete record.
    pub valid_len: u64,
    /// Bytes of incomplete record dropped.
    pub dropped_bytes: u64,
}

/// The shared WAL frame decoder: walks a byte image and yields complete,
/// checksum-verified frames. See the [module docs](self) for who
/// consumes it.
#[derive(Debug)]
pub struct WalReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    end: Option<WalEnd>,
}

impl<'a> WalReader<'a> {
    /// Over a full WAL file image; verifies the magic header.
    pub fn new(bytes: &'a [u8]) -> Result<WalReader<'a>, String> {
        match bytes.get(..WAL_MAGIC.len()) {
            Some(magic) if magic == WAL_MAGIC => Ok(WalReader {
                bytes,
                pos: WAL_MAGIC.len(),
                end: None,
            }),
            Some(magic) => Err(format!("bad magic {magic:?}")),
            None => Err(format!(
                "short header is not a full magic ({} bytes)",
                bytes.len()
            )),
        }
    }

    /// Over bare frame bytes with no file header (a replication stream
    /// chunk or a single shipped frame).
    pub fn frames_only(bytes: &'a [u8]) -> WalReader<'a> {
        WalReader {
            bytes,
            pos: 0,
            end: None,
        }
    }

    /// Byte offset just past the last complete frame yielded so far.
    pub fn offset(&self) -> u64 {
        self.pos as u64
    }

    /// The scan verdict; `None` until the reader has hit the end.
    pub fn end(&self) -> Option<WalEnd> {
        self.end
    }

    /// The next complete frame, or `None` at a clean or torn end
    /// (distinguish with [`WalReader::end`]).
    ///
    /// # Errors
    /// A checksum-valid payload too short to carry a generation — a
    /// state no crash can produce.
    pub fn next_frame(&mut self) -> Result<Option<WalFrame>, String> {
        if self.end.is_some() {
            return Ok(None);
        }
        if self.pos == self.bytes.len() {
            self.end = Some(WalEnd::Clean);
            return Ok(None);
        }
        let rest = &self.bytes[self.pos..];
        if rest.len() < RECORD_HEADER_LEN {
            self.end = Some(WalEnd::Torn {
                why: "incomplete record header",
            });
            return Ok(None);
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        let Some(payload) = rest.get(RECORD_HEADER_LEN..RECORD_HEADER_LEN + len) else {
            self.end = Some(WalEnd::Torn {
                why: "incomplete record payload",
            });
            return Ok(None);
        };
        if crc32(payload) != crc {
            self.end = Some(WalEnd::Torn {
                why: "record checksum mismatch",
            });
            return Ok(None);
        }
        let generation = peek_generation(payload)?;
        self.pos += RECORD_HEADER_LEN + len;
        Ok(Some(WalFrame {
            generation,
            crc,
            payload: payload.to_vec(),
        }))
    }
}

/// Generation-ordered polling over a live WAL file — the leader side of
/// replication. Each [`WalTailer::poll_after`] re-reads the file and
/// returns the complete frames past an acked generation; torn tails end
/// the poll (the writer may still be mid-append), and a file that
/// shrank (the WAL reset after a checkpoint) rewinds the tailer to the
/// header instead of erroring.
///
/// The tailer never writes and takes no lock, so it is safe to point at
/// a store another handle (or process) is appending to: appends are
/// fsynced frame-at-a-time, so a concurrent read sees a complete prefix
/// plus at most one incomplete frame.
#[derive(Debug)]
pub struct WalTailer {
    path: PathBuf,
    /// Byte offset just past the last complete frame seen; scanning
    /// resumes here so a long-lived tailer does not re-verify old
    /// frames.
    offset: u64,
}

impl WalTailer {
    /// Opens a tailer at the start of `path` (the first poll scans the
    /// whole log). The file's magic header is verified on each poll, not
    /// here, so a tailer may be constructed before the log exists.
    pub fn new(path: &Path) -> WalTailer {
        WalTailer {
            path: path.to_path_buf(),
            offset: WAL_MAGIC.len() as u64,
        }
    }

    /// The log file being tailed.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Returns up to `max` complete frames whose generation exceeds
    /// `after`, in file (= generation) order, advancing the tailer past
    /// every frame it scanned. An incomplete tail ends the poll without
    /// error; a shrunken file rewinds to the header first.
    ///
    /// # Errors
    /// [`Error::Io`] when the file cannot be read; [`Error::Corrupt`]
    /// for states no crash can produce (bad magic, undecodable
    /// generation).
    pub fn poll_after(&mut self, after: u64, max: usize) -> Result<Vec<WalFrame>, Error> {
        let bytes = std::fs::read(&self.path).map_err(|e| Error::Io {
            op: "read",
            path: self.path.clone(),
            source: e,
        })?;
        let corrupt = |detail: String| Error::Corrupt {
            path: self.path.clone(),
            detail,
        };
        if (bytes.len() as u64) < self.offset {
            // The WAL was reset by a checkpoint: every logged generation
            // is covered by the snapshot now, and new appends continue
            // at higher generations. Start over from the header.
            self.offset = WAL_MAGIC.len() as u64;
        }
        let mut reader = WalReader::new(&bytes).map_err(corrupt)?;
        // Skip (without re-verifying) the prefix already scanned.
        reader.pos = (self.offset as usize).min(bytes.len());
        let mut frames = Vec::new();
        while frames.len() < max {
            match reader.next_frame().map_err(corrupt)? {
                Some(frame) => {
                    if frame.generation > after {
                        frames.push(frame);
                    }
                }
                None => break,
            }
        }
        self.offset = reader.offset();
        Ok(frames)
    }
}

/// An open write-ahead log positioned for appends.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
}

impl Wal {
    /// Creates a fresh, empty log at `path` (truncating any existing
    /// file), writes the magic header, and fsyncs.
    pub fn create(path: &Path) -> Result<Wal, Error> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| Error::Io {
                op: "create",
                path: path.to_path_buf(),
                source: e,
            })?;
        io::write_all(&mut file, WAL_MAGIC, path)?;
        io::fsync(&file, path)?;
        counters::WAL_FSYNCS.incr();
        counters::WAL_BYTES_WRITTEN.add(WAL_MAGIC.len() as u64);
        Ok(Wal {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Opens an existing log, verifying every record and truncating a
    /// torn tail if the last append was interrupted. Returns the log
    /// (positioned for appends), the complete records in file order, and
    /// the torn-tail report if one was removed.
    ///
    /// A file shorter than the magic header whose bytes are a *prefix*
    /// of the magic is treated as a crash during [`Wal::create`] and
    /// rewritten; any other header mismatch is [`Error::Corrupt`].
    pub fn open(path: &Path) -> Result<(Wal, Vec<WalRecord>, Option<TornTail>), Error> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| Error::Io {
                op: "open",
                path: path.to_path_buf(),
                source: e,
            })?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(|e| Error::Io {
            op: "read",
            path: path.to_path_buf(),
            source: e,
        })?;

        if bytes.len() < WAL_MAGIC.len() {
            if *bytes != WAL_MAGIC[..bytes.len()] {
                return Err(Error::Corrupt {
                    path: path.to_path_buf(),
                    detail: format!("short header is not a prefix of {WAL_MAGIC:?}"),
                });
            }
            // Crash during create: rewrite the header in place.
            let dropped = bytes.len() as u64;
            io::truncate(&file, 0, path)?;
            file.seek(SeekFrom::Start(0)).map_err(|e| Error::Io {
                op: "seek",
                path: path.to_path_buf(),
                source: e,
            })?;
            io::write_all(&mut file, WAL_MAGIC, path)?;
            io::fsync(&file, path)?;
            counters::WAL_FSYNCS.incr();
            counters::WAL_TORN_TAILS.incr();
            file.seek(SeekFrom::Start(WAL_MAGIC.len() as u64))
                .map_err(|e| Error::Io {
                    op: "seek",
                    path: path.to_path_buf(),
                    source: e,
                })?;
            return Ok((
                Wal {
                    file,
                    path: path.to_path_buf(),
                },
                Vec::new(),
                Some(TornTail {
                    valid_len: WAL_MAGIC.len() as u64,
                    dropped_bytes: dropped,
                }),
            ));
        }

        let corrupt = |detail: String| Error::Corrupt {
            path: path.to_path_buf(),
            detail,
        };
        let mut reader = WalReader::new(&bytes).map_err(corrupt)?;
        let mut records = Vec::new();
        while let Some(frame) = reader.next_frame().map_err(corrupt)? {
            // The checksum matched, so these are the exact bytes that
            // were appended; a decode failure here is real corruption.
            records.push(frame.decode().map_err(corrupt)?);
        }
        let pos = reader.offset();
        let torn = match reader.end() {
            Some(WalEnd::Clean) | None => None,
            Some(WalEnd::Torn { .. }) => {
                let dropped_bytes = bytes.len() as u64 - pos;
                io::truncate(&file, pos, path)?;
                io::fsync(&file, path)?;
                counters::WAL_FSYNCS.incr();
                counters::WAL_TORN_TAILS.incr();
                Some(TornTail {
                    valid_len: pos,
                    dropped_bytes,
                })
            }
        };
        file.seek(SeekFrom::Start(pos)).map_err(|e| Error::Io {
            op: "seek",
            path: path.to_path_buf(),
            source: e,
        })?;
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
            },
            records,
            torn,
        ))
    }

    /// Appends one record and fsyncs. On return the batch is durable;
    /// the caller may mutate the engine.
    pub fn append(&mut self, generation: u64, rows: &[Vec<Value>]) -> Result<(), Error> {
        self.append_frame(&WalFrame::encode(generation, rows))
    }

    /// Appends one pre-encoded frame verbatim and fsyncs — the
    /// follower's apply path, guaranteeing its log holds the exact bytes
    /// the leader logged rather than a re-encoding.
    pub fn append_frame(&mut self, frame: &WalFrame) -> Result<(), Error> {
        let frame = frame.file_bytes();
        io::write_all(&mut self.file, &frame, &self.path)?;
        io::fsync(&self.file, &self.path)?;
        counters::WAL_APPENDS.incr();
        counters::WAL_BYTES_WRITTEN.add(frame.len() as u64);
        counters::WAL_FSYNCS.incr();
        Ok(())
    }

    /// Drops every record, keeping the magic header — called after a
    /// snapshot makes the logged generations redundant. Crash-safe in
    /// either direction: if the truncate never lands, recovery simply
    /// skips records at or below the snapshot generation.
    pub fn reset(&mut self) -> Result<(), Error> {
        io::truncate(&self.file, WAL_MAGIC.len() as u64, &self.path)?;
        io::fsync(&self.file, &self.path)?;
        counters::WAL_FSYNCS.incr();
        self.file
            .seek(SeekFrom::Start(WAL_MAGIC.len() as u64))
            .map_err(|e| Error::Io {
                op: "seek",
                path: self.path.to_path_buf(),
                source: e,
            })?;
        Ok(())
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_wal(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join("disc_persist_wal_tests");
        std::fs::create_dir_all(&dir).expect("mk tempdir");
        dir.join(format!(
            "{tag}-{}-{}.wal",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn rows(xs: &[f64]) -> Vec<Vec<Value>> {
        xs.iter().map(|&x| vec![Value::Num(x)]).collect()
    }

    #[test]
    fn append_and_reopen_roundtrip() {
        let path = temp_wal("roundtrip");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(1, &rows(&[1.0, 2.0])).unwrap();
        wal.append(2, &rows(&[-0.0])).unwrap();
        drop(wal);

        let (mut wal, records, torn) = Wal::open(&path).unwrap();
        assert!(torn.is_none());
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].generation, 1);
        assert_eq!(records[0].rows, rows(&[1.0, 2.0]));
        assert_eq!(records[1].generation, 2);
        assert_eq!(
            records[1].rows[0][0].as_num().unwrap().to_bits(),
            (-0.0f64).to_bits()
        );

        // Appending after reopen lands after the existing records.
        wal.append(3, &rows(&[7.0])).unwrap();
        drop(wal);
        let (_, records, torn) = Wal::open(&path).unwrap();
        assert!(torn.is_none());
        assert_eq!(records.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let path = temp_wal("torn");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(1, &rows(&[1.0])).unwrap();
        wal.append(2, &rows(&[2.0])).unwrap();
        drop(wal);
        let full = std::fs::read(&path).unwrap();

        // Chop 5 bytes off the final record: framing is incomplete.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let (_, records, torn) = Wal::open(&path).unwrap();
        assert_eq!(records.len(), 1, "only the first record survives");
        let torn = torn.expect("tear must be reported");
        assert_eq!(
            torn.dropped_bytes as usize,
            full.len() - 5 - torn.valid_len as usize
        );
        // The truncate is durable: a second open sees a clean log.
        let (_, records, torn) = Wal::open(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert!(torn.is_none(), "tail already truncated");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_payload_byte_is_a_torn_tail() {
        let path = temp_wal("crcflip");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(1, &rows(&[1.0])).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let (_, records, torn) = Wal::open(&path).unwrap();
        assert!(records.is_empty());
        assert!(torn.is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn partial_magic_is_rewritten() {
        let path = temp_wal("header");
        std::fs::write(&path, &WAL_MAGIC[..3]).unwrap();
        let (_, records, torn) = Wal::open(&path).unwrap();
        assert!(records.is_empty());
        assert_eq!(torn.unwrap().dropped_bytes, 3);
        assert_eq!(std::fs::read(&path).unwrap(), WAL_MAGIC);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_is_corrupt() {
        let path = temp_wal("badmagic");
        std::fs::write(&path, b"NOTAWAL!extra").unwrap();
        let err = Wal::open(&path).map(|_| ()).unwrap_err();
        assert!(matches!(err, Error::Corrupt { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_keeps_header_and_drops_records() {
        let path = temp_wal("reset");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(1, &rows(&[1.0])).unwrap();
        wal.reset().unwrap();
        wal.append(9, &rows(&[9.0])).unwrap();
        drop(wal);
        let (_, records, torn) = Wal::open(&path).unwrap();
        assert!(torn.is_none());
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].generation, 9);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn frame_roundtrips_through_parts_and_decode() {
        let frame = WalFrame::encode(7, &rows(&[1.5, -0.0]));
        let back =
            WalFrame::from_parts(frame.generation, frame.crc, frame.payload.clone()).unwrap();
        assert_eq!(back, frame);
        let record = back.decode().unwrap();
        assert_eq!(record.generation, 7);
        assert_eq!(
            record.rows[1][0].as_num().unwrap().to_bits(),
            (-0.0f64).to_bits()
        );

        // A flipped payload byte fails the checksum gate.
        let mut bad = frame.payload.clone();
        bad[0] ^= 1;
        assert!(WalFrame::from_parts(frame.generation, frame.crc, bad).is_err());
        // A lying generation header fails the peek gate.
        assert!(WalFrame::from_parts(8, frame.crc, frame.payload.clone()).is_err());
    }

    #[test]
    fn reader_yields_frames_and_reports_the_end() {
        let path = temp_wal("reader");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(1, &rows(&[1.0])).unwrap();
        wal.append(2, &rows(&[2.0, 3.0])).unwrap();
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();

        let mut reader = WalReader::new(&bytes).unwrap();
        let a = reader.next_frame().unwrap().unwrap();
        let b = reader.next_frame().unwrap().unwrap();
        assert_eq!((a.generation, b.generation), (1, 2));
        assert_eq!(reader.next_frame().unwrap(), None);
        assert_eq!(reader.end(), Some(WalEnd::Clean));
        assert_eq!(reader.offset(), bytes.len() as u64);
        assert_eq!(a.decode().unwrap().rows, rows(&[1.0]));
        assert_eq!(b.decode().unwrap().rows, rows(&[2.0, 3.0]));

        // Truncation at every byte length: complete frames before the
        // cut still decode, the cut itself is reported torn, never
        // corrupt, and never yields a partial frame.
        for keep in WAL_MAGIC.len()..bytes.len() {
            let mut reader = WalReader::new(&bytes[..keep]).unwrap();
            let mut yielded = Vec::new();
            while let Some(frame) = reader.next_frame().unwrap() {
                yielded.push(frame);
            }
            if keep == bytes.len() {
                assert_eq!(reader.end(), Some(WalEnd::Clean));
            } else {
                assert!(
                    matches!(reader.end(), Some(WalEnd::Torn { .. })) || yielded.len() < 2,
                    "keep {keep}"
                );
            }
            for frame in &yielded {
                frame.decode().unwrap();
            }
            assert!(yielded.len() <= 2, "keep {keep}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reader_treats_mid_log_corruption_as_a_tear() {
        let path = temp_wal("midflip");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(1, &rows(&[1.0])).unwrap();
        wal.append(2, &rows(&[2.0])).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the *first* frame: the scan cannot trust
        // anything past the first checksum failure, so it stops there.
        bytes[WAL_MAGIC.len() + RECORD_HEADER_LEN] ^= 0x10;
        let mut reader = WalReader::new(&bytes).unwrap();
        assert_eq!(reader.next_frame().unwrap(), None);
        assert!(matches!(reader.end(), Some(WalEnd::Torn { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn frames_only_reader_decodes_shipped_bytes() {
        let a = WalFrame::encode(3, &rows(&[0.5]));
        let b = WalFrame::encode(4, &rows(&[0.75]));
        let mut stream = a.file_bytes();
        stream.extend_from_slice(&b.file_bytes());
        let mut reader = WalReader::frames_only(&stream);
        assert_eq!(reader.next_frame().unwrap().unwrap(), a);
        assert_eq!(reader.next_frame().unwrap().unwrap(), b);
        assert_eq!(reader.next_frame().unwrap(), None);
        assert_eq!(reader.end(), Some(WalEnd::Clean));
    }

    #[test]
    fn tailer_resumes_after_generation_and_survives_reset() {
        let path = temp_wal("tailer");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(1, &rows(&[1.0])).unwrap();
        wal.append(2, &rows(&[2.0])).unwrap();

        let mut tailer = WalTailer::new(&path);
        let frames = tailer.poll_after(0, 16).unwrap();
        assert_eq!(
            frames.iter().map(|f| f.generation).collect::<Vec<_>>(),
            vec![1, 2]
        );
        // Nothing new: the tailer remembers its offset and returns
        // nothing without re-reading old frames.
        assert!(tailer.poll_after(2, 16).unwrap().is_empty());

        // New appends arrive incrementally; `after` filters acked ones.
        wal.append(3, &rows(&[3.0])).unwrap();
        wal.append(4, &rows(&[4.0])).unwrap();
        let frames = tailer.poll_after(3, 16).unwrap();
        assert_eq!(
            frames.iter().map(|f| f.generation).collect::<Vec<_>>(),
            vec![4]
        );

        // `max` bounds one poll; the next poll continues where it left
        // off (the caller re-passes its last acked generation).
        let mut fresh = WalTailer::new(&path);
        let first = fresh.poll_after(0, 3).unwrap();
        assert_eq!(first.len(), 3);
        let rest = fresh
            .poll_after(first.last().unwrap().generation, 3)
            .unwrap();
        assert_eq!(
            rest.iter().map(|f| f.generation).collect::<Vec<_>>(),
            vec![4]
        );

        // A checkpoint resets the log; the tailer rewinds instead of
        // erroring, and later appends (at higher generations) flow.
        wal.reset().unwrap();
        assert!(tailer.poll_after(4, 16).unwrap().is_empty());
        wal.append(5, &rows(&[5.0])).unwrap();
        let frames = tailer.poll_after(4, 16).unwrap();
        assert_eq!(
            frames.iter().map(|f| f.generation).collect::<Vec<_>>(),
            vec![5]
        );

        // A torn tail ends the poll quietly; once the append completes
        // (simulated by restoring the bytes) the frame is delivered.
        let full = std::fs::read(&path).unwrap();
        let frame6 = WalFrame::encode(6, &rows(&[6.0])).file_bytes();
        let mut torn = full.clone();
        torn.extend_from_slice(&frame6[..frame6.len() - 3]);
        std::fs::write(&path, &torn).unwrap();
        assert!(tailer.poll_after(5, 16).unwrap().is_empty());
        let mut complete = full;
        complete.extend_from_slice(&frame6);
        std::fs::write(&path, &complete).unwrap();
        let frames = tailer.poll_after(5, 16).unwrap();
        assert_eq!(
            frames.iter().map(|f| f.generation).collect::<Vec<_>>(),
            vec![6]
        );
        std::fs::remove_file(&path).ok();
    }
}
