//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`).
//!
//! The build environment is fully offline, so the checksum is hand-rolled
//! rather than pulled from crates.io. The algorithm is the ubiquitous
//! table-driven byte-at-a-time variant; the table is built at compile
//! time so the hot path is one lookup and one shift per byte.

/// The 256-entry lookup table for the reflected IEEE polynomial.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// The CRC-32 of `bytes` (initial value `!0`, final complement — the
/// standard zlib/PNG/Ethernet convention).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = b"disc persistence layer".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at byte {byte} bit {bit}");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
