//! Deterministic IO fault injection (test-only).
//!
//! Compiled only under `--cfg disc_fault`, like `disc_core::fault`. The
//! low-level IO helpers in `io.rs` tick a single process-global operation
//! counter — every `write`, `truncate`, `fsync`, and `rename` consumes one
//! tick — and an active [`IoFaultPlan`] fires at a chosen tick:
//!
//! * [`IoFaultPlan::fail_op`] makes that operation return an injected
//!   error without touching the file;
//! * [`IoFaultPlan::torn_write`] makes a *write* persist only a prefix of
//!   its buffer before erroring — the moral equivalent of losing power
//!   mid-`write(2)`.
//!
//! Because the counter spans every durable operation in order, a test can
//! sweep `k = 0, 1, 2, …` and interrupt a workload at *every* IO
//! boundary: [`scoped`] reports whether the fault actually fired, so the
//! sweep stops at the first `k` past the workload's total op count. This
//! is how the crash-equivalence suite proves recovery is correct no
//! matter where the crash lands.
//!
//! The plan is process-global (no plumbing through the store APIs) and
//! [`scoped`] serializes callers, so concurrent tests cannot observe each
//! other's faults.

use std::sync::{Mutex, MutexGuard};

/// What to inject when the op counter reaches the chosen tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// Fail the operation outright.
    Fail,
    /// For a write: persist only this many prefix bytes, then fail.
    /// Non-write operations hit at this tick fail outright.
    Torn { keep: usize },
}

/// A schedule: one fault at one global IO-operation tick.
#[derive(Debug, Clone, Copy)]
pub struct IoFaultPlan {
    at_op: u64,
    kind: Kind,
}

impl IoFaultPlan {
    /// Fails the `k`-th IO operation (0-based) of the scope.
    pub fn fail_op(k: u64) -> Self {
        IoFaultPlan {
            at_op: k,
            kind: Kind::Fail,
        }
    }

    /// Tears the `k`-th IO operation: if it is a write, only the first
    /// `keep` bytes of its buffer reach the file before the injected
    /// error; any other operation fails outright.
    pub fn torn_write(k: u64, keep: usize) -> Self {
        IoFaultPlan {
            at_op: k,
            kind: Kind::Torn { keep },
        }
    }
}

#[derive(Debug)]
struct Active {
    plan: IoFaultPlan,
    next_op: u64,
    fired: bool,
}

static ACTIVE: Mutex<Option<Active>> = Mutex::new(None);
static SCOPE: Mutex<()> = Mutex::new(());

fn lock<T>(m: &'static Mutex<T>) -> MutexGuard<'static, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` with `plan` active, returning its result and whether the
/// fault fired. Calls are serialized process-wide; the plan is cleared
/// afterwards even if `f` panics.
pub fn scoped<R>(plan: IoFaultPlan, f: impl FnOnce() -> R) -> (R, bool) {
    let _serial = lock(&SCOPE);
    *lock(&ACTIVE) = Some(Active {
        plan,
        next_op: 0,
        fired: false,
    });
    struct Clear;
    impl Drop for Clear {
        fn drop(&mut self) {
            *lock(&ACTIVE) = None;
        }
    }
    let _clear = Clear;
    let out = f();
    let fired = lock(&ACTIVE).as_ref().map(|a| a.fired).unwrap_or(false);
    (out, fired)
}

/// The fault decision for one IO operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Injected {
    /// Proceed normally.
    None,
    /// Return an injected error without touching the file.
    Fail,
    /// Write only `keep` prefix bytes, then return an injected error
    /// (writes only; other ops treat this as [`Injected::Fail`]).
    Torn { keep: usize },
}

/// Ticks the global op counter and reports what, if anything, to inject
/// into this operation. Called by every `io.rs` helper.
pub(crate) fn next_op() -> Injected {
    let mut guard = lock(&ACTIVE);
    let Some(active) = guard.as_mut() else {
        return Injected::None;
    };
    let op = active.next_op;
    active.next_op += 1;
    if op != active.plan.at_op {
        return Injected::None;
    }
    active.fired = true;
    match active.plan.kind {
        Kind::Fail => Injected::Fail,
        Kind::Torn { keep } => Injected::Torn { keep },
    }
}

/// The deterministic error every injected fault produces.
pub(crate) fn injected_error() -> std::io::Error {
    std::io::Error::other("injected io fault")
}
