//! Low-level durable IO helpers: every byte the store writes and every
//! durability point (fsync, rename, truncate) goes through here, which is
//! what makes the `--cfg disc_fault` hooks able to interrupt a workload
//! at *any* IO boundary (see [`crate::fault`]).

use std::fs::File;
use std::io::Write;
use std::path::Path;

use crate::error::Error;

#[cfg(disc_fault)]
use crate::fault::{self, Injected};

fn io_err(op: &'static str, path: &Path, source: std::io::Error) -> Error {
    Error::Io {
        op,
        path: path.to_path_buf(),
        source,
    }
}

/// Writes the whole buffer (fault hook: fail, or persist a torn prefix).
pub(crate) fn write_all(file: &mut File, buf: &[u8], path: &Path) -> Result<(), Error> {
    #[cfg(disc_fault)]
    match fault::next_op() {
        Injected::None => {}
        Injected::Fail => return Err(io_err("write", path, fault::injected_error())),
        Injected::Torn { keep } => {
            // Persist a prefix, as a power loss mid-write(2) would, then
            // surface the failure to the caller.
            let keep = keep.min(buf.len());
            file.write_all(&buf[..keep])
                .map_err(|e| io_err("write", path, e))?;
            return Err(io_err("write", path, fault::injected_error()));
        }
    }
    file.write_all(buf).map_err(|e| io_err("write", path, e))
}

/// Truncates (or extends) the file to `len` bytes (fault hook: fail).
pub(crate) fn truncate(file: &File, len: u64, path: &Path) -> Result<(), Error> {
    #[cfg(disc_fault)]
    if fault::next_op() != Injected::None {
        return Err(io_err("truncate", path, fault::injected_error()));
    }
    file.set_len(len).map_err(|e| io_err("truncate", path, e))
}

/// Flushes file data and metadata to stable storage (fault hook: fail).
pub(crate) fn fsync(file: &File, path: &Path) -> Result<(), Error> {
    #[cfg(disc_fault)]
    if fault::next_op() != Injected::None {
        return Err(io_err("fsync", path, fault::injected_error()));
    }
    file.sync_all().map_err(|e| io_err("fsync", path, e))
}

/// Flushes a *directory*, making renames and file creations within it
/// durable (fault hook: fail). A no-op on platforms where directories
/// cannot be opened as files.
pub(crate) fn fsync_dir(dir: &Path) -> Result<(), Error> {
    #[cfg(disc_fault)]
    if fault::next_op() != Injected::None {
        return Err(io_err("fsync", dir, fault::injected_error()));
    }
    #[cfg(unix)]
    {
        let handle = File::open(dir).map_err(|e| io_err("fsync", dir, e))?;
        handle.sync_all().map_err(|e| io_err("fsync", dir, e))
    }
    #[cfg(not(unix))]
    {
        Ok(())
    }
}

/// Renames `from` onto `to` (atomic on POSIX; fault hook: fail).
pub(crate) fn rename(from: &Path, to: &Path) -> Result<(), Error> {
    #[cfg(disc_fault)]
    if fault::next_op() != Injected::None {
        return Err(io_err("rename", from, fault::injected_error()));
    }
    std::fs::rename(from, to).map_err(|e| io_err("rename", from, e))
}
