//! Checksummed, atomically-replaced snapshots of full engine state.
//!
//! File layout (all integers little-endian, `disc_data::binary`
//! conventions):
//!
//! ```text
//! [8-byte magic "DISCSNP1"][u32 version][u32 payload_len][u32 crc32(payload)][payload]
//! payload = [u32-prefixed config blob]      (opaque to this layer)
//!           [schema]                        (binary::encode_schema)
//!           [u64 generation]
//!           [u32 shards]                    (engine shard count)
//!           [rows original][rows current]   (binary::encode_rows)
//!           [u32 n][u64 count     × n]
//!           [u32 n][δ_η list tag  × n]      (0 = outlier, 1 + u32 k + f64 × k)
//!           [u32 p][u64 row       × p]      (pending, ascending)
//! ```
//!
//! Write protocol: the full image goes to `engine.snap.tmp`, is fsynced,
//! renamed over `engine.snap`, and the directory is fsynced — so the
//! visible snapshot file is always complete. A crash mid-write leaves at
//! worst a stale `.tmp` (cleaned on the next open) and the previous
//! snapshot intact. Because no crash can expose a partial snapshot,
//! *any* validation failure on read is [`Error::Corrupt`].

use std::fs::OpenOptions;
use std::path::Path;

use disc_core::EngineState;
use disc_data::binary::{self, Reader};
use disc_data::Schema;
use disc_obs::counters;

use crate::crc::crc32;
use crate::error::Error;
use crate::io;

/// First 8 bytes of every snapshot file.
pub const SNAP_MAGIC: &[u8; 8] = b"DISCSNP1";

/// Current snapshot format version. Version 2 added the engine shard
/// count after the generation; version-1 files are refused with a clear
/// error rather than guessed at.
pub const SNAP_VERSION: u32 = 2;

/// Everything a snapshot persists: the schema, an opaque saver-config
/// blob (the CLI stores its `(ε, η, κ, …)` knobs here so `disc recover`
/// needs no flags), and the engine's logical state.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotData {
    /// The dataset schema.
    pub schema: Schema,
    /// Caller-defined saver configuration bytes, returned verbatim.
    pub config: Vec<u8>,
    /// The shard count of the engine that wrote the snapshot. Restoring
    /// honors it by default, so a store reopens with the same partition
    /// layout it closed with; callers may override it (the image itself
    /// is shard-agnostic — any count restores bit-identically).
    pub shards: u32,
    /// The engine image (see [`EngineState`]).
    pub state: EngineState,
}

fn encode_payload(data: &SnapshotData) -> Vec<u8> {
    let mut out = Vec::new();
    binary::put_bytes(&mut out, &data.config);
    binary::encode_schema(&mut out, &data.schema);
    binary::put_u64(&mut out, data.state.generation);
    binary::put_u32(&mut out, data.shards);
    binary::encode_rows(&mut out, &data.state.original);
    binary::encode_rows(&mut out, &data.state.current);
    binary::put_u32(&mut out, data.state.counts.len() as u32);
    for &c in &data.state.counts {
        binary::put_u64(&mut out, c as u64);
    }
    binary::put_u32(&mut out, data.state.nearest.len() as u32);
    for list in &data.state.nearest {
        match list {
            None => out.push(0),
            Some(ds) => {
                out.push(1);
                binary::put_u32(&mut out, ds.len() as u32);
                for &d in ds {
                    binary::put_f64(&mut out, d);
                }
            }
        }
    }
    binary::put_u32(&mut out, data.state.pending.len() as u32);
    for &row in &data.state.pending {
        binary::put_u64(&mut out, row as u64);
    }
    out
}

fn decode_payload(payload: &[u8]) -> Result<SnapshotData, String> {
    let mut r = Reader::new(payload);
    let config = binary::take_bytes(&mut r, "config blob")
        .map_err(|e| e.to_string())?
        .to_vec();
    let schema = binary::decode_schema(&mut r).map_err(|e| e.to_string())?;
    let generation = r.u64("snapshot generation").map_err(|e| e.to_string())?;
    let shards = r.u32("shard count").map_err(|e| e.to_string())?;
    if shards < 1 {
        return Err("shard count must be at least 1".into());
    }
    let original = binary::decode_rows(&mut r).map_err(|e| e.to_string())?;
    let current = binary::decode_rows(&mut r).map_err(|e| e.to_string())?;
    let n = r
        .count(8, "count table length")
        .map_err(|e| e.to_string())?;
    let mut counts = Vec::with_capacity(n);
    for _ in 0..n {
        counts.push(r.u64("neighbor count").map_err(|e| e.to_string())? as usize);
    }
    let n = r
        .count(1, "nearest table length")
        .map_err(|e| e.to_string())?;
    let mut nearest = Vec::with_capacity(n);
    for _ in 0..n {
        nearest.push(match r.u8("δ_η list tag").map_err(|e| e.to_string())? {
            0 => None,
            1 => {
                let k = r.count(8, "δ_η list length").map_err(|e| e.to_string())?;
                let mut ds = Vec::with_capacity(k);
                for _ in 0..k {
                    ds.push(r.f64("δ_η distance").map_err(|e| e.to_string())?);
                }
                Some(ds)
            }
            tag => return Err(format!("unknown δ_η list tag {tag:#04x}")),
        });
    }
    let p = r
        .count(8, "pending set length")
        .map_err(|e| e.to_string())?;
    let mut pending = Vec::with_capacity(p);
    for _ in 0..p {
        pending.push(r.u64("pending row").map_err(|e| e.to_string())? as usize);
    }
    if !r.is_exhausted() {
        return Err(format!("{} trailing payload bytes", r.remaining()));
    }
    Ok(SnapshotData {
        schema,
        config,
        shards,
        state: EngineState {
            generation,
            original,
            current,
            counts,
            nearest,
            pending,
        },
    })
}

/// The snapshot file within a store directory.
pub fn snapshot_path(dir: &Path) -> std::path::PathBuf {
    dir.join("engine.snap")
}

/// The scratch file a snapshot is staged in before the atomic rename.
pub fn snapshot_tmp_path(dir: &Path) -> std::path::PathBuf {
    dir.join("engine.snap.tmp")
}

/// Encodes `data` as a complete snapshot file image (magic, version,
/// length, checksum, payload) — the exact bytes [`write_snapshot`]
/// stages, and the unit replication ships when a follower bootstraps:
/// shipping the file image rather than a re-encoding means the follower
/// installs bit-for-bit what the leader would recover from.
pub fn snapshot_to_bytes(data: &SnapshotData) -> Vec<u8> {
    let payload = encode_payload(data);
    let mut bytes = Vec::with_capacity(20 + payload.len());
    bytes.extend_from_slice(SNAP_MAGIC);
    binary::put_u32(&mut bytes, SNAP_VERSION);
    binary::put_u32(&mut bytes, payload.len() as u32);
    binary::put_u32(&mut bytes, crc32(&payload));
    bytes.extend_from_slice(&payload);
    bytes
}

/// Fully validates and decodes a snapshot file image — the inverse of
/// [`snapshot_to_bytes`], shared by [`read_snapshot`] and the
/// replication follower (which validates shipped bytes *before* writing
/// them into its own store). The error is a bare detail string; callers
/// attach path or peer context.
pub fn snapshot_from_bytes(bytes: &[u8]) -> Result<SnapshotData, String> {
    if bytes.len() < 20 {
        return Err(format!("file is only {} bytes", bytes.len()));
    }
    if &bytes[..8] != SNAP_MAGIC {
        return Err(format!("bad magic {:?}", &bytes[..8]));
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != SNAP_VERSION {
        return Err(format!(
            "unsupported version {version} (this build reads {SNAP_VERSION})"
        ));
    }
    let len = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize;
    let crc = u32::from_le_bytes([bytes[16], bytes[17], bytes[18], bytes[19]]);
    let payload = bytes
        .get(20..20 + len)
        .ok_or_else(|| format!("payload truncated: header claims {len} bytes"))?;
    if bytes.len() != 20 + len {
        return Err(format!(
            "{} trailing bytes after payload",
            bytes.len() - 20 - len
        ));
    }
    if crc32(payload) != crc {
        return Err("payload checksum mismatch".into());
    }
    decode_payload(payload).map_err(|e| format!("payload does not decode: {e}"))
}

/// Writes `data` atomically: stage to `engine.snap.tmp`, fsync, rename
/// over `engine.snap`, fsync the directory.
pub fn write_snapshot(dir: &Path, data: &SnapshotData) -> Result<(), Error> {
    let bytes = snapshot_to_bytes(data);
    let tmp = snapshot_tmp_path(dir);
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)
        .map_err(|e| Error::Io {
            op: "create",
            path: tmp.clone(),
            source: e,
        })?;
    io::write_all(&mut file, &bytes, &tmp)?;
    io::fsync(&file, &tmp)?;
    drop(file);
    io::rename(&tmp, &snapshot_path(dir))?;
    io::fsync_dir(dir)?;
    counters::SNAPSHOT_WRITES.incr();
    counters::SNAPSHOT_BYTES_WRITTEN.add(bytes.len() as u64);
    Ok(())
}

/// Reads and fully validates the store's snapshot.
pub fn read_snapshot(dir: &Path) -> Result<SnapshotData, Error> {
    let path = snapshot_path(dir);
    let bytes = std::fs::read(&path).map_err(|e| Error::Io {
        op: "read",
        path: path.clone(),
        source: e,
    })?;
    let data = snapshot_from_bytes(&bytes).map_err(|detail| Error::Corrupt {
        path: path.clone(),
        detail,
    })?;
    counters::SNAPSHOT_LOADS.incr();
    Ok(data)
}

/// Reads the store's snapshot as a validated file image — what a
/// replication leader ships to a bootstrapping follower. The bytes are
/// fully validated first so a leader can never ship corruption, and the
/// decoded data rides along so the caller learns the generation without
/// decoding twice.
pub fn read_snapshot_bytes(dir: &Path) -> Result<(Vec<u8>, SnapshotData), Error> {
    let path = snapshot_path(dir);
    let bytes = std::fs::read(&path).map_err(|e| Error::Io {
        op: "read",
        path: path.clone(),
        source: e,
    })?;
    let data = snapshot_from_bytes(&bytes).map_err(|detail| Error::Corrupt {
        path: path.clone(),
        detail,
    })?;
    counters::SNAPSHOT_LOADS.incr();
    Ok((bytes, data))
}

/// Atomically installs a pre-encoded snapshot file image into `dir` —
/// the follower half of snapshot shipping. The bytes are validated
/// before any byte lands on disk; the returned [`SnapshotData`] is the
/// decoded image. Same staging protocol as [`write_snapshot`].
pub fn install_snapshot_bytes(dir: &Path, bytes: &[u8]) -> Result<SnapshotData, Error> {
    let tmp = snapshot_tmp_path(dir);
    let data = snapshot_from_bytes(bytes).map_err(|detail| Error::Corrupt {
        path: snapshot_path(dir),
        detail,
    })?;
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)
        .map_err(|e| Error::Io {
            op: "create",
            path: tmp.clone(),
            source: e,
        })?;
    io::write_all(&mut file, bytes, &tmp)?;
    io::fsync(&file, &tmp)?;
    drop(file);
    io::rename(&tmp, &snapshot_path(dir))?;
    io::fsync_dir(dir)?;
    counters::SNAPSHOT_WRITES.incr();
    counters::SNAPSHOT_BYTES_WRITTEN.add(bytes.len() as u64);
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_distance::Value;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_store(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "disc_persist_snap_tests/{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("mk tempdir");
        dir
    }

    fn sample() -> SnapshotData {
        SnapshotData {
            schema: Schema::numeric(2),
            config: vec![0xDE, 0xAD, 0xBE, 0xEF],
            shards: 3,
            state: EngineState {
                generation: 42,
                original: vec![
                    vec![Value::Num(1.0), Value::Num(-0.0)],
                    vec![Value::Num(2.0), Value::Null],
                ],
                current: vec![
                    vec![Value::Num(1.0), Value::Num(-0.0)],
                    vec![Value::Num(2.5), Value::Null],
                ],
                counts: vec![5, 1],
                nearest: vec![Some(vec![0.1, 0.2, 0.3]), None],
                pending: vec![1],
            },
        }
    }

    #[test]
    fn write_read_roundtrip_is_bit_exact() {
        let dir = temp_store("roundtrip");
        let data = sample();
        write_snapshot(&dir, &data).unwrap();
        let back = read_snapshot(&dir).unwrap();
        assert_eq!(back, data);
        assert!(
            !snapshot_tmp_path(&dir).exists(),
            "tmp file must be renamed away"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn byte_image_roundtrips_and_installs() {
        let data = sample();
        let bytes = snapshot_to_bytes(&data);
        assert_eq!(snapshot_from_bytes(&bytes).unwrap(), data);

        // write_snapshot stages exactly this image.
        let dir = temp_store("image");
        write_snapshot(&dir, &data).unwrap();
        let (on_disk, decoded) = read_snapshot_bytes(&dir).unwrap();
        assert_eq!(on_disk, bytes);
        assert_eq!(decoded, data);

        // Shipping the image into another store installs it bit-exactly.
        let dst = temp_store("install");
        let installed = install_snapshot_bytes(&dst, &on_disk).unwrap();
        assert_eq!(installed, data);
        assert_eq!(read_snapshot(&dst).unwrap(), data);
        assert_eq!(std::fs::read(snapshot_path(&dst)).unwrap(), bytes);

        // A corrupted image is refused before anything lands on disk.
        let empty = temp_store("refuse");
        let mut bad = bytes.clone();
        bad[24] ^= 0x01;
        assert!(matches!(
            install_snapshot_bytes(&empty, &bad),
            Err(Error::Corrupt { .. })
        ));
        assert!(!snapshot_path(&empty).exists());
        for dir in [dir, dst, empty] {
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn rewrite_replaces_previous_snapshot() {
        let dir = temp_store("rewrite");
        let mut data = sample();
        write_snapshot(&dir, &data).unwrap();
        data.state.generation = 43;
        data.state.pending.clear();
        write_snapshot(&dir, &data).unwrap();
        assert_eq!(read_snapshot(&dir).unwrap().state.generation, 43);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let dir = temp_store("flip");
        write_snapshot(&dir, &sample()).unwrap();
        let path = snapshot_path(&dir);
        let clean = std::fs::read(&path).unwrap();
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0x01;
            std::fs::write(&path, &bad).unwrap();
            let err = read_snapshot(&dir).map(|_| ()).unwrap_err();
            assert!(matches!(err, Error::Corrupt { .. }), "byte {i}: {err}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_at_every_length_is_detected() {
        let dir = temp_store("trunc");
        write_snapshot(&dir, &sample()).unwrap();
        let path = snapshot_path(&dir);
        let clean = std::fs::read(&path).unwrap();
        for keep in 0..clean.len() {
            std::fs::write(&path, &clean[..keep]).unwrap();
            let err = read_snapshot(&dir).map(|_| ()).unwrap_err();
            assert!(matches!(err, Error::Corrupt { .. }), "keep {keep}: {err}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
