//! Crash-safe persistence for the streaming DISC engine.
//!
//! [`DurableEngine`] wraps a [`disc_core::DiscEngine`] with two on-disk
//! structures in a *store directory*:
//!
//! * a **write-ahead log** (`engine.wal`) of every ingest batch —
//!   appended and fsynced *before* the engine mutates, so an applied
//!   ingest is always recoverable ([`wal`]);
//! * periodic **snapshots** (`engine.snap`) of the full engine state —
//!   written to a temp file, fsynced, and atomically renamed into place,
//!   so the visible snapshot is always complete ([`snapshot`]).
//!
//! Recovery ([`DurableEngine::open`]) is deterministic: load the
//! snapshot at generation `g`, truncate any torn WAL tail (the expected
//! artifact of a crash mid-append), and replay the surviving records
//! `g+1, g+2, …` through the ordinary ingest path. The result is
//! bit-identical — down to f64 bit patterns — to the state of an
//! uninterrupted run, for any crash point and any worker count; the
//! crash-equivalence suite pins this by injecting IO faults (the
//! `fault` module, compiled under `--cfg disc_fault`) at every write,
//! fsync, truncate, and rename boundary.
//!
//! Durability invariants, in one place:
//!
//! 1. **Validate before append** — a batch the engine would reject is
//!    never made durable, so replay cannot fail on bad input.
//! 2. **Append before apply** — WAL record `k+1` is fsynced before the
//!    engine moves to generation `k+1`; on-disk state is never *behind*
//!    a mutation the caller observed.
//! 3. **Snapshot atomically, then reset the log** — a crash between the
//!    two leaves records at generations the snapshot already covers;
//!    replay skips them (and rejects any true generation gap as
//!    corruption).
//! 4. **Poison on IO failure** — after any failed write the handle
//!    refuses further mutation ([`Error::Poisoned`]); reopening the
//!    store is the one recovery path, and it is total.
//!
//! Checksums (CRC-32, [`crc`]) distinguish *torn* writes — truncated
//! and reported via [`RecoveryReport::torn_tail`] — from *corrupt*
//! files (bad magic, checksum-valid bytes that do not decode, gap in
//! the generation sequence), which fail loudly as [`Error::Corrupt`].
//! Everything is std-only: the byte formats live in
//! [`disc_data::binary`], so a store written on one platform reads
//! identically on any other.

pub mod crc;
pub mod error;
#[cfg(disc_fault)]
pub mod fault;
mod io;
pub mod lock;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use error::Error;
pub use lock::StoreLock;
pub use snapshot::{SnapshotData, SNAP_MAGIC, SNAP_VERSION};
pub use store::{DurableEngine, RecoveryReport, ReplApply, StoreOptions};
pub use wal::{TornTail, Wal, WalEnd, WalFrame, WalReader, WalRecord, WalTailer, WAL_MAGIC};
