//! The sharded engine's cross-layer correctness anchor: the shard count
//! is a pure execution knob, invisible in every observable result.
//!
//! * **Streaming** — for any batch split and worker count, a sharded
//!   engine's per-ingest `SaveReport`s and final state are bit-equal to
//!   the single-shard run, which in turn equals one batch `save_all`
//!   over the concatenated data (`engine_equivalence` in disc-core).
//! * **Durability** — a store written with one shard count reopens
//!   under another (here S=4 → S=1) with bit-identical state, and the
//!   resumed ingests keep producing the reports the original layout
//!   would have.
//!
//! "Bit-equal" is literal: [`DiscEngine::export_state`] compares rows
//! down to f64 bit patterns, plus cached counts, δ_η lists, pending set,
//! and generation.

use disc_core::{DiscEngine, DistanceConstraints, Parallelism, SaveReport, Saver, SaverConfig};
use disc_data::{ClusterSpec, Schema};
use disc_data::{Dataset, ErrorInjector};
use disc_distance::{TupleDistance, Value};
use disc_persist::{DurableEngine, StoreOptions};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_store(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "disc_persist_shard_tests/{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Clustered data with injected dirty and natural errors.
fn dirty_dataset(n: usize, seed: u64, dirty: usize, natural: usize) -> Dataset {
    let mut ds = ClusterSpec::new(n, 3, 2, seed).generate();
    ErrorInjector::new(dirty, natural, seed ^ 0x9E37_79B9).inject(&mut ds);
    ds
}

fn saver(workers: usize) -> Box<dyn Saver> {
    Box::new(
        SaverConfig::new(DistanceConstraints::new(2.5, 4), TupleDistance::numeric(3))
            .kappa(2)
            .parallelism(Parallelism(workers))
            .build_approx()
            .expect("valid config"),
    )
}

fn make_saver(schema: &Schema, config: &[u8]) -> Result<Box<dyn Saver>, disc_core::Error> {
    assert_eq!(schema.arity(), 3);
    Ok(saver(config[0] as usize))
}

/// Splits `rows` into `batches` runs of pseudo-random (but
/// deterministic) sizes summing to `rows.len()`; empty runs allowed.
fn split_rows(rows: &[Vec<Value>], batches: usize, seed: u64) -> Vec<Vec<Vec<Value>>> {
    let mut cuts: Vec<usize> = (0..batches.saturating_sub(1))
        .map(|i| {
            let h = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((i as u64 + 1).wrapping_mul(1442695040888963407));
            (h % (rows.len() as u64 + 1)) as usize
        })
        .collect();
    cuts.push(0);
    cuts.push(rows.len());
    cuts.sort_unstable();
    cuts.windows(2).map(|w| rows[w[0]..w[1]].to_vec()).collect()
}

/// Streams `chunks` into a fresh engine with `shards` shards and
/// `workers` save workers; returns the engine and every report.
fn stream(
    chunks: &[Vec<Vec<Value>>],
    shards: usize,
    workers: usize,
) -> (DiscEngine, Vec<SaveReport>) {
    let mut engine = DiscEngine::with_shards(Schema::numeric(3), saver(workers), shards);
    let reports = chunks
        .iter()
        .map(|chunk| engine.ingest(chunk.clone()).expect("finite data"))
        .collect();
    (engine, reports)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn sharded_streaming_matches_single_shard_batch(
        n in 40usize..90,
        seed in 0u64..1000,
        dirty in 2usize..10,
        natural in 0usize..3,
        batches in 1usize..6,
        split_seed in 0u64..1000,
    ) {
        let base = dirty_dataset(n, seed, dirty, natural);
        let chunks = split_rows(base.rows(), batches, split_seed);
        for workers in [1usize, 4] {
            // The anchor: one batch save_all over everything.
            let mut batch_ds = base.clone();
            let batch_report = saver(workers).save_all(&mut batch_ds);

            let (single, single_reports) = stream(&chunks, 1, workers);
            prop_assert_eq!(
                single.dataset().rows(),
                batch_ds.rows(),
                "single-shard stream diverges from batch"
            );
            prop_assert_eq!(&single.outliers(), &batch_report.outliers);

            for shards in [2usize, 7] {
                let (sharded, reports) = stream(&chunks, shards, workers);
                prop_assert_eq!(
                    &reports,
                    &single_reports,
                    "SaveReports diverge at {} shards, {} workers",
                    shards,
                    workers
                );
                prop_assert_eq!(
                    sharded.export_state(),
                    single.export_state(),
                    "engine state diverges at {} shards, {} workers",
                    shards,
                    workers
                );
            }
        }
    }
}

/// A store written with four shards, reopened with one: state comes
/// back bit-identical, and resumed ingests report exactly what the
/// four-shard layout (never closed) reports for the same rows.
#[test]
fn durable_reopen_with_one_shard_matches_four() {
    let base = dirty_dataset(70, 21, 6, 1);
    let chunks: Vec<_> = base.rows().chunks(16).map(<[_]>::to_vec).collect();
    let (head, tail) = chunks.split_at(2);

    let dir = temp_store("reopen-4-to-1");
    let mut store = DurableEngine::create(
        &dir,
        Schema::numeric(3),
        saver(4),
        vec![4u8], // make_saver reads the worker count back from here
        StoreOptions {
            shards: Some(4),
            ..StoreOptions::default()
        },
    )
    .unwrap();
    assert_eq!(store.engine().shards(), 4);

    // The in-memory control: the same four-shard engine, never closed.
    let mut control = DiscEngine::with_shards(Schema::numeric(3), saver(4), 4);

    for chunk in head {
        let durable = store.ingest(chunk.clone()).unwrap();
        let memory = control.ingest(chunk.clone()).unwrap();
        assert_eq!(durable, memory);
    }
    store.close().unwrap();

    let (mut reopened, recovery) = DurableEngine::open(
        &dir,
        make_saver,
        StoreOptions {
            shards: Some(1),
            ..StoreOptions::default()
        },
    )
    .unwrap();
    assert_eq!(recovery.replayed_records, 0, "close checkpointed");
    assert_eq!(reopened.engine().shards(), 1, "override re-partitions");
    assert_eq!(
        reopened.engine().export_state(),
        control.export_state(),
        "reopen under a different shard count must be bit-identical"
    );

    // Resumed ingests under the new layout still match the four-shard
    // control, report for report, and land on the same final state.
    for chunk in tail {
        let durable = reopened.ingest(chunk.clone()).unwrap();
        let memory = control.ingest(chunk.clone()).unwrap();
        assert_eq!(durable, memory);
    }
    assert_eq!(reopened.engine().export_state(), control.export_state());

    reopened.close().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
