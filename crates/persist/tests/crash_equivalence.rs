//! The persistence layer's correctness anchor: a crashed-and-recovered
//! run must land on state bit-identical to an uninterrupted one.
//!
//! Two layers of interruption:
//!
//! * **Ingest boundaries** (always compiled): drop the handle after any
//!   prefix of the ingests — the WAL-before-apply protocol makes every
//!   completed ingest durable, so reopening and resuming must reproduce
//!   the uninterrupted engine exactly, for any checkpoint cadence and
//!   worker count.
//! * **Any IO operation** (`--cfg disc_fault`): sweep a deterministic
//!   fault — outright failure or a torn prefix write — across *every*
//!   write/fsync/truncate/rename the workload issues, including
//!   mid-WAL-append, mid-snapshot, and mid-store-creation. After each
//!   injected crash, recovery plus resumption must still be bit-exact.
//!
//! "Bit-identical" is literal: [`DiscEngine::export_state`] compares
//! original and saved rows down to f64 bit patterns, plus the cached
//! counts, δ_η lists, pending set, and generation.

use disc_core::{DistanceConstraints, EngineState, Parallelism, Saver, SaverConfig};
use disc_data::{ClusterSpec, ErrorInjector, Schema};
use disc_distance::{TupleDistance, Value};
use disc_persist::{DurableEngine, StoreOptions};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_store(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "disc_persist_crash_tests/{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Clustered data with injected dirty and natural errors, as rows.
fn dirty_rows(n: usize, seed: u64, dirty: usize, natural: usize) -> Vec<Vec<Value>> {
    let mut ds = ClusterSpec::new(n, 3, 2, seed).generate();
    ErrorInjector::new(dirty, natural, seed ^ 0x9E37_79B9).inject(&mut ds);
    ds.rows().to_vec()
}

fn saver(workers: usize) -> Box<dyn Saver> {
    Box::new(
        SaverConfig::new(DistanceConstraints::new(2.5, 4), TupleDistance::numeric(3))
            .kappa(2)
            .parallelism(Parallelism(workers))
            .build_approx()
            .expect("valid config"),
    )
}

/// The saver factory handed to `DurableEngine::open`; the config blob
/// carries the worker count so recovery needs no out-of-band knobs.
fn make_saver(schema: &Schema, config: &[u8]) -> Result<Box<dyn Saver>, disc_core::Error> {
    assert_eq!(schema.arity(), 3);
    Ok(saver(config[0] as usize))
}

/// Splits `rows` into deterministic pseudo-random chunk sizes.
fn split_rows(rows: &[Vec<Value>], batches: usize, seed: u64) -> Vec<Vec<Vec<Value>>> {
    let mut cuts: Vec<usize> = (0..batches.saturating_sub(1))
        .map(|i| {
            let h = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((i as u64 + 1).wrapping_mul(1442695040888963407));
            (h % (rows.len() as u64 + 1)) as usize
        })
        .collect();
    cuts.push(0);
    cuts.push(rows.len());
    cuts.sort_unstable();
    cuts.windows(2).map(|w| rows[w[0]..w[1]].to_vec()).collect()
}

/// One uninterrupted run: create, ingest every chunk, return final state.
fn uninterrupted(chunks: &[Vec<Vec<Value>>], workers: usize, opts: StoreOptions) -> EngineState {
    let dir = temp_store("reference");
    let mut store = DurableEngine::create(
        &dir,
        Schema::numeric(3),
        saver(workers),
        vec![workers as u8],
        opts,
    )
    .expect("create reference store");
    for chunk in chunks {
        store.ingest(chunk.clone()).expect("finite synthetic data");
    }
    let state = store.engine().export_state();
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
    state
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    /// Crash (drop the handle) after every ingest prefix, recover, resume:
    /// the final state must be bit-identical to the uninterrupted run.
    #[test]
    fn recovery_at_every_ingest_boundary_is_bit_identical(
        n in 40usize..80,
        seed in 0u64..1000,
        dirty in 2usize..8,
        batches in 2usize..5,
        split_seed in 0u64..1000,
        every in 0u64..3,
    ) {
        let rows = dirty_rows(n, seed, dirty, 1);
        let chunks = split_rows(&rows, batches, split_seed);
        let opts = StoreOptions {
            snapshot_every: (every > 0).then_some(every),
            ..StoreOptions::default()
        };
        for workers in [1usize, 4] {
            let expected = uninterrupted(&chunks, workers, opts);
            for boundary in 0..=chunks.len() {
                let dir = temp_store("boundary");
                let mut store = DurableEngine::create(
                    &dir,
                    Schema::numeric(3),
                    saver(workers),
                    vec![workers as u8],
                    opts,
                )
                .expect("create store");
                for chunk in &chunks[..boundary] {
                    store.ingest(chunk.clone()).expect("finite synthetic data");
                }
                // "Crash": the handle goes away with no shutdown protocol.
                drop(store);

                let (mut store, report) = DurableEngine::open(&dir, make_saver, opts)
                    .expect("recovery must succeed");
                prop_assert_eq!(report.torn_tail, None, "clean crash leaves no tear");
                prop_assert_eq!(report.generation, boundary as u64);
                let done = store.generation() as usize;
                prop_assert_eq!(done, boundary);
                for chunk in &chunks[done..] {
                    store.ingest(chunk.clone()).expect("finite synthetic data");
                }
                prop_assert_eq!(
                    store.engine().export_state(),
                    expected.clone(),
                    "boundary {} workers {}",
                    boundary,
                    workers
                );
                drop(store);
                std::fs::remove_dir_all(&dir).ok();
            }
        }
    }
}

/// Interrupt at *every IO operation* — mid-WAL-append, mid-snapshot
/// write, mid-rename, mid-creation — via the deterministic fault hooks.
#[cfg(disc_fault)]
mod io_faults {
    use super::*;
    use disc_persist::fault::{scoped, IoFaultPlan};
    use disc_persist::Error;

    /// The faultable workload: create the store, ingest every chunk
    /// (auto-checkpointing), final checkpoint. Stops at the first error.
    fn workload(
        dir: &std::path::Path,
        chunks: &[Vec<Vec<Value>>],
        workers: usize,
        opts: StoreOptions,
    ) -> Result<(), Error> {
        let mut store = DurableEngine::create(
            dir,
            Schema::numeric(3),
            saver(workers),
            vec![workers as u8],
            opts,
        )?;
        for chunk in chunks {
            store.ingest(chunk.clone())?;
        }
        store.checkpoint()
    }

    /// Recovers after an injected crash and resumes the remaining
    /// ingests; returns the final state.
    fn recover_and_resume(
        dir: &std::path::Path,
        chunks: &[Vec<Vec<Value>>],
        workers: usize,
        opts: StoreOptions,
    ) -> EngineState {
        let (mut store, _report) = match DurableEngine::open(dir, make_saver, opts) {
            Ok(x) => x,
            Err(Error::StoreMissing { .. }) => {
                // The crash landed before the genesis snapshot: nothing
                // was durable, so recovery is starting over.
                std::fs::remove_dir_all(dir).ok();
                let store = DurableEngine::create(
                    dir,
                    Schema::numeric(3),
                    saver(workers),
                    vec![workers as u8],
                    opts,
                )
                .expect("re-create after pre-durability crash");
                (
                    store,
                    disc_persist::RecoveryReport {
                        snapshot_generation: 0,
                        replayed_records: 0,
                        replayed_rows: 0,
                        torn_tail: None,
                        generation: 0,
                        rows: 0,
                    },
                )
            }
            Err(e) => panic!("recovery must always succeed, got: {e}"),
        };
        // One generation per ingest: the recovered generation says
        // exactly which chunks are already applied.
        let done = store.generation() as usize;
        assert!(done <= chunks.len(), "recovered past the workload");
        for chunk in &chunks[done..] {
            store.ingest(chunk.clone()).expect("finite synthetic data");
        }
        store.checkpoint().expect("final checkpoint");
        store.engine().export_state()
    }

    /// Sweeps a fault across every IO op index until one run completes
    /// untouched; every interrupted run must recover to the exact
    /// uninterrupted state.
    fn sweep(kind: fn(u64) -> IoFaultPlan, workers: usize) {
        let rows = dirty_rows(50, 9, 4, 1);
        let chunks = split_rows(&rows, 5, 77);
        let opts = StoreOptions {
            snapshot_every: Some(2),
            ..StoreOptions::default()
        };
        let expected = uninterrupted(&chunks, workers, opts);
        for k in 0u64.. {
            let dir = temp_store("sweep");
            let (result, fired) = scoped(kind(k), || workload(&dir, &chunks, workers, opts));
            if !fired {
                // The fault landed past the workload's op count: this
                // run was untouched and the sweep is complete. Every
                // earlier op index was interrupted exactly once.
                result.expect("untouched workload must succeed");
                assert!(k > 10, "sweep only interrupted {k} ops — hooks not wired?");
                std::fs::remove_dir_all(&dir).ok();
                return;
            }
            result.expect_err("an injected fault must surface as an error");
            let state = recover_and_resume(&dir, &chunks, workers, opts);
            assert_eq!(state, expected, "divergence after fault at op {k}");
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn failed_io_at_every_op_recovers_bit_identically() {
        for workers in [1usize, 4] {
            sweep(IoFaultPlan::fail_op, workers);
        }
    }

    #[test]
    fn torn_write_at_every_op_recovers_bit_identically() {
        for workers in [1usize, 4] {
            // Vary the surviving prefix with the op index so tears land
            // at assorted byte offsets inside headers and payloads.
            sweep(
                |k| IoFaultPlan::torn_write(k, (k as usize % 7) * 3),
                workers,
            );
        }
    }

    /// An IO failure poisons the handle: later mutations are refused
    /// rather than risking divergence from the log.
    #[test]
    fn io_failure_poisons_the_handle() {
        let rows = dirty_rows(40, 3, 3, 1);
        let dir = temp_store("poison");
        let opts = StoreOptions::default();
        let ((), fired) = scoped(IoFaultPlan::fail_op(8), || {
            let mut store =
                DurableEngine::create(&dir, Schema::numeric(3), saver(1), vec![1], opts)
                    .expect("creation takes fewer than 8 ops");
            store
                .ingest(rows[..10].to_vec())
                .expect("first append is op 6–7");
            let err = store.ingest(rows[10..20].to_vec()).map(|_| ()).unwrap_err();
            assert!(matches!(err, Error::Io { .. }), "{err}");
            assert!(store.is_poisoned());
            let err = store.ingest(rows[20..30].to_vec()).map(|_| ()).unwrap_err();
            assert!(matches!(err, Error::Poisoned), "{err}");
            let err = store.checkpoint().map(|_| ()).unwrap_err();
            assert!(matches!(err, Error::Poisoned), "{err}");
        });
        assert!(fired, "fault plan must have fired");
        // Reopening is the recovery path.
        let (store, _) = DurableEngine::open(&dir, make_saver, opts).expect("reopen recovers");
        assert!(!store.is_poisoned());
        assert_eq!(store.generation(), 1, "only the first ingest applied");
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }
}
