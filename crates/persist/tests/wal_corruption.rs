//! The WAL corruption battery (golden-fixture truncation).
//!
//! Builds a store whose log holds two complete records, then truncates
//! the file at *every* byte offset inside the final record. Each
//! truncation must recover cleanly: the tear is detected and reported,
//! the log is cut back to the last complete record, the engine replays
//! to exactly the state after the first batch — and nothing ever
//! panics. Byte-flip corruption of the tail is exercised the same way.

use disc_core::{DistanceConstraints, EngineState, Saver, SaverConfig};
use disc_data::{ClusterSpec, ErrorInjector, Schema};
use disc_distance::{TupleDistance, Value};
use disc_persist::{store::wal_path, DurableEngine, StoreOptions};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_store(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "disc_persist_walcorrupt_tests/{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn saver() -> Box<dyn Saver> {
    Box::new(
        SaverConfig::new(DistanceConstraints::new(2.5, 4), TupleDistance::numeric(3))
            .kappa(2)
            .build_approx()
            .expect("valid config"),
    )
}

fn make_saver(schema: &Schema, _config: &[u8]) -> Result<Box<dyn Saver>, disc_core::Error> {
    assert_eq!(schema.arity(), 3);
    Ok(saver())
}

/// Two ingest batches of clustered data with injected errors.
fn batches() -> [Vec<Vec<Value>>; 2] {
    let mut ds = ClusterSpec::new(50, 3, 2, 21).generate();
    ErrorInjector::new(4, 1, 21 ^ 0x9E37_79B9).inject(&mut ds);
    let rows = ds.rows().to_vec();
    [rows[..30].to_vec(), rows[30..].to_vec()]
}

/// The golden fixture: a store whose WAL holds exactly two records,
/// plus the reference states after one and after both batches.
fn golden() -> (PathBuf, Vec<u8>, EngineState, EngineState) {
    let dir = temp_store("golden");
    let [b1, b2] = batches();
    let mut store = DurableEngine::create(
        &dir,
        Schema::numeric(3),
        saver(),
        Vec::new(),
        StoreOptions::default(),
    )
    .expect("create store");
    store.ingest(b1.clone()).expect("finite synthetic data");
    let after_one = store.engine().export_state();
    store.ingest(b2).expect("finite synthetic data");
    let after_two = store.engine().export_state();
    drop(store);
    let wal = std::fs::read(wal_path(&dir)).expect("read golden WAL");
    (dir, wal, after_one, after_two)
}

/// Byte offset where the final record starts: the end of the first
/// record, found by replaying the framing.
fn final_record_start(wal: &[u8]) -> usize {
    let header = 8; // magic
    let len = u32::from_le_bytes([
        wal[header],
        wal[header + 1],
        wal[header + 2],
        wal[header + 3],
    ]) as usize;
    header + 8 + len
}

#[test]
fn truncation_at_every_offset_of_the_final_record_recovers() {
    let (dir, wal, after_one, after_two) = golden();
    let path = wal_path(&dir);
    let start = final_record_start(&wal);
    assert!(start < wal.len(), "fixture must hold two records");

    // Sanity: the intact file replays both records.
    let (store, report) =
        DurableEngine::open(&dir, make_saver, StoreOptions::default()).expect("intact open");
    assert_eq!(report.replayed_records, 2);
    assert_eq!(report.torn_tail, None);
    assert_eq!(store.engine().export_state(), after_two);
    drop(store);

    // `keep == start` leaves zero bytes of the record — a clean boundary,
    // covered by `truncation_at_the_record_boundary_is_clean`.
    for keep in start + 1..wal.len() {
        std::fs::write(&path, &wal[..keep]).expect("write truncated WAL");
        let (store, report) = DurableEngine::open(&dir, make_saver, StoreOptions::default())
            .unwrap_or_else(|e| panic!("truncation at byte {keep} must recover: {e}"));
        assert_eq!(report.replayed_records, 1, "keep {keep}");
        let torn = report
            .torn_tail
            .unwrap_or_else(|| panic!("truncation at byte {keep} must be reported"));
        assert_eq!(torn.valid_len as usize, start, "keep {keep}");
        assert_eq!(torn.dropped_bytes as usize, keep - start, "keep {keep}");
        assert_eq!(
            store.engine().export_state(),
            after_one,
            "recovered state diverges at keep {keep}"
        );
        drop(store);
        // The tear was truncated away durably: reopening is clean.
        let (_, report) = DurableEngine::open(&dir, make_saver, StoreOptions::default())
            .expect("second open after truncation");
        assert_eq!(report.replayed_records, 1, "keep {keep}");
        assert_eq!(report.torn_tail, None, "keep {keep}: tail already cut");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncation_at_the_record_boundary_is_clean() {
    let (dir, wal, after_one, _) = golden();
    let path = wal_path(&dir);
    let start = final_record_start(&wal);
    std::fs::write(&path, &wal[..start]).expect("drop the final record whole");
    let (store, report) =
        DurableEngine::open(&dir, make_saver, StoreOptions::default()).expect("boundary open");
    assert_eq!(report.replayed_records, 1);
    assert_eq!(report.torn_tail, None, "no partial bytes, no tear");
    assert_eq!(store.engine().export_state(), after_one);
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flipped_byte_in_the_final_record_is_a_reported_tear() {
    let (dir, wal, after_one, _) = golden();
    let path = wal_path(&dir);
    let start = final_record_start(&wal);
    // Flip one byte in the final record's header, middle, and last byte.
    for &offset in &[start, start + 4, (start + wal.len()) / 2, wal.len() - 1] {
        let mut bad = wal.clone();
        bad[offset] ^= 0x20;
        std::fs::write(&path, &bad).expect("write corrupted WAL");
        let (store, report) = DurableEngine::open(&dir, make_saver, StoreOptions::default())
            .unwrap_or_else(|e| panic!("flip at byte {offset} must recover: {e}"));
        assert_eq!(report.replayed_records, 1, "offset {offset}");
        assert!(report.torn_tail.is_some(), "offset {offset}");
        assert_eq!(store.engine().export_state(), after_one, "offset {offset}");
        drop(store);
    }
    std::fs::remove_dir_all(&dir).ok();
}
