//! Vantage-point tree: metric-space index for arbitrary tuple metrics.
//!
//! Works for text attributes under (weighted) edit distance, where the grid
//! index does not apply, using only the triangle inequality for pruning —
//! the same property the DISC bounds rely on.

use disc_distance::{PackedMatrix, PackedScan, TupleDistance, Value};
use disc_obs::counters;

use crate::{sort_hits, NeighborIndex};

struct Node {
    /// Row id of the vantage point.
    vantage: u32,
    /// Median distance from the vantage point to the points in its subtree.
    radius: f64,
    /// Points with distance ≤ radius.
    inside: Option<Box<Node>>,
    /// Points with distance > radius.
    outside: Option<Box<Node>>,
}

/// The owned node structure of a vantage-point tree, decoupled from the row
/// storage so owners of the rows (e.g. the dynamic index) can keep a tree
/// alongside the data it indexes. Queries take the row slice the stored ids
/// refer to; callers must pass the same rows the tree was built over (a
/// longer slice is fine — extra rows are simply not part of the tree).
pub struct VpNodes {
    root: Option<Box<Node>>,
    len: usize,
}

impl VpNodes {
    /// Builds the node structure over all of `rows` in `O(n log n)` expected
    /// distance evaluations. Construction is deterministic: the first point
    /// of each partition is the vantage point and the median split uses a
    /// stable order.
    pub fn build(rows: &[Vec<Value>], dist: &TupleDistance) -> Self {
        Self::build_over(rows, dist, rows.len())
    }

    /// [`VpNodes::build`] restricted to the prefix `rows[..n]`, for
    /// buffer-plus-rebuild owners that index a prefix and scan the tail.
    pub fn build_over(rows: &[Vec<Value>], dist: &TupleDistance, n: usize) -> Self {
        assert!(n <= rows.len());
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let root = build_rec(rows, dist, &mut ids);
        VpNodes { root, len: n }
    }

    /// Number of rows covered by the tree.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends every tree row within `eps` of the scan's query to `out`;
    /// `visited` counts the nodes touched. The [`PackedScan`] carries the
    /// query plus the row storage (packed when the metric admits it).
    pub fn range_into(
        &self,
        scan: &mut PackedScan<'_>,
        eps: f64,
        out: &mut Vec<(u32, f64)>,
        visited: &mut u64,
    ) {
        if let Some(root) = &self.root {
            range_rec(root, scan, eps, out, visited);
        }
    }

    /// Merges the `k` nearest tree rows to the scan's query into the
    /// candidate list `best`, which must already be sorted ascending by
    /// distance (ties by id) and is kept that way; `visited` counts the
    /// nodes touched.
    pub fn knn_into(
        &self,
        scan: &mut PackedScan<'_>,
        k: usize,
        best: &mut Vec<(u32, f64)>,
        visited: &mut u64,
    ) {
        if k > 0 {
            if let Some(root) = &self.root {
                knn_rec(root, scan, k, best, visited);
            }
        }
    }
}

fn build_rec(rows: &[Vec<Value>], dist: &TupleDistance, ids: &mut [u32]) -> Option<Box<Node>> {
    let (&vantage, rest) = ids.split_first()?;
    if rest.is_empty() {
        return Some(Box::new(Node {
            vantage,
            radius: 0.0,
            inside: None,
            outside: None,
        }));
    }
    let vrow = &rows[vantage as usize];
    let mut with_d: Vec<(u32, f64)> = rest
        .iter()
        .map(|&id| (id, dist.dist(vrow, &rows[id as usize])))
        .collect();
    with_d.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    let mid = with_d.len() / 2;
    let radius = with_d[mid].1;
    // inside: d ≤ radius (indices 0..=mid), outside: d > radius.
    let split = with_d
        .iter()
        .position(|p| p.1 > radius)
        .unwrap_or(with_d.len());
    let mut inside_ids: Vec<u32> = with_d[..split].iter().map(|p| p.0).collect();
    let mut outside_ids: Vec<u32> = with_d[split..].iter().map(|p| p.0).collect();
    Some(Box::new(Node {
        vantage,
        radius,
        inside: build_rec(rows, dist, &mut inside_ids),
        outside: build_rec(rows, dist, &mut outside_ids),
    }))
}

fn range_rec(
    node: &Node,
    scan: &mut PackedScan<'_>,
    eps: f64,
    out: &mut Vec<(u32, f64)>,
    visited: &mut u64,
) {
    *visited += 1;
    let d = scan.dist(node.vantage);
    if d <= eps {
        out.push((node.vantage, d));
    }
    if let Some(inside) = &node.inside {
        // A point p inside has Δ(v,p) ≤ radius; by triangle inequality
        // Δ(q,p) ≥ d − radius, so skip if d − radius > eps.
        if d - node.radius <= eps {
            range_rec(inside, scan, eps, out, visited);
        }
    }
    if let Some(outside) = &node.outside {
        // A point p outside has Δ(v,p) > radius; Δ(q,p) ≥ radius − d.
        if node.radius - d <= eps {
            range_rec(outside, scan, eps, out, visited);
        }
    }
}

fn knn_rec(
    node: &Node,
    scan: &mut PackedScan<'_>,
    k: usize,
    best: &mut Vec<(u32, f64)>,
    visited: &mut u64,
) {
    *visited += 1;
    let d = scan.dist(node.vantage);
    let tau = if best.len() == k {
        best[k - 1].1
    } else {
        f64::INFINITY
    };
    if d <= tau {
        let pos = best
            .binary_search_by(|p| {
                p.1.partial_cmp(&d)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(p.0.cmp(&node.vantage))
            })
            .unwrap_or_else(|e| e);
        best.insert(pos, (node.vantage, d));
        if best.len() > k {
            best.pop();
        }
    }
    // Visit the nearer side first for better pruning.
    let first_inside = d <= node.radius;
    for go_inside in [first_inside, !first_inside] {
        let child = if go_inside {
            &node.inside
        } else {
            &node.outside
        };
        if let Some(child) = child {
            let tau = if best.len() == k {
                best[k - 1].1
            } else {
                f64::INFINITY
            };
            let reachable = if go_inside {
                d - node.radius <= tau
            } else {
                node.radius - d <= tau
            };
            if reachable {
                knn_rec(child, scan, k, best, visited);
            }
        }
    }
}

/// A vantage-point tree over a fixed row set.
pub struct VpTree<'a> {
    rows: &'a [Vec<Value>],
    dist: TupleDistance,
    nodes: VpNodes,
    packed: Option<PackedMatrix>,
}

impl<'a> VpTree<'a> {
    /// Builds the tree; see [`VpNodes::build`] for cost and determinism.
    /// Construction stays on the `Value` path; queries use the packed
    /// layout for pivot distances when the metric admits it.
    pub fn new(rows: &'a [Vec<Value>], dist: TupleDistance) -> Self {
        let nodes = VpNodes::build(rows, &dist);
        let packed = PackedMatrix::build(rows, &dist);
        VpTree {
            rows,
            dist,
            nodes,
            packed,
        }
    }

    fn scan<'q>(&'q self, query: &'q [Value]) -> PackedScan<'q> {
        PackedScan::new(self.packed.as_ref(), self.rows, &self.dist, query)
    }
}

impl NeighborIndex for VpTree<'_> {
    fn len(&self) -> usize {
        self.rows.len()
    }

    fn range(&self, query: &[Value], eps: f64) -> Vec<(u32, f64)> {
        counters::VPTREE_RANGE_QUERIES.incr();
        let mut out = Vec::new();
        let mut visited = 0u64;
        self.nodes
            .range_into(&mut self.scan(query), eps, &mut out, &mut visited);
        counters::VPTREE_ROWS_VISITED.add(visited);
        out
    }

    fn knn(&self, query: &[Value], k: usize) -> Vec<(u32, f64)> {
        counters::VPTREE_KNN_QUERIES.incr();
        let mut best = Vec::with_capacity(k + 1);
        let mut visited = 0u64;
        self.nodes
            .knn_into(&mut self.scan(query), k, &mut best, &mut visited);
        counters::VPTREE_ROWS_VISITED.add(visited);
        sort_hits(&mut best);
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForceIndex;

    fn rows_2d(n: usize) -> Vec<Vec<Value>> {
        // Deterministic scatter via a small LCG.
        let mut state = 12345u64;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = ((state >> 33) % 1000) as f64 / 100.0;
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let y = ((state >> 33) % 1000) as f64 / 100.0;
                vec![Value::Num(x), Value::Num(y)]
            })
            .collect()
    }

    #[test]
    fn range_matches_brute_force() {
        let data = rows_2d(300);
        let dist = TupleDistance::numeric(2);
        let tree = VpTree::new(&data, dist.clone());
        let brute = BruteForceIndex::new(&data, dist);
        for eps in [0.5, 2.0, 8.0] {
            let query = vec![Value::Num(5.0), Value::Num(5.0)];
            let mut a = tree.range(&query, eps);
            let mut b = brute.range(&query, eps);
            sort_hits(&mut a);
            sort_hits(&mut b);
            assert_eq!(a, b, "eps={eps}");
        }
    }

    #[test]
    fn knn_matches_brute_force() {
        let data = rows_2d(200);
        let dist = TupleDistance::numeric(2);
        let tree = VpTree::new(&data, dist.clone());
        let brute = BruteForceIndex::new(&data, dist);
        for k in [1, 7, 25] {
            let query = vec![Value::Num(3.3), Value::Num(7.7)];
            let a = tree.knn(&query, k);
            let b = brute.knn(&query, k);
            assert_eq!(a.len(), b.len(), "k={k}");
            for (x, y) in a.iter().zip(&b) {
                assert!((x.1 - y.1).abs() < 1e-12, "k={k}");
            }
        }
    }

    #[test]
    fn works_on_text_data() {
        let data: Vec<Vec<Value>> = ["cat", "cart", "dog", "dot", "zebra"]
            .iter()
            .map(|s| vec![Value::Text(s.to_string())])
            .collect();
        let dist = TupleDistance::textual(1);
        let tree = VpTree::new(&data, dist.clone());
        let brute = BruteForceIndex::new(&data, dist);
        let query = vec![Value::Text("cot".into())];
        let mut a = tree.range(&query, 1.0);
        let mut b = brute.range(&query, 1.0);
        sort_hits(&mut a);
        sort_hits(&mut b);
        assert_eq!(a, b);
        // "cat" and "dot" are both 1 edit from "cot".
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<Vec<Value>> = Vec::new();
        let t = VpTree::new(&empty, TupleDistance::numeric(1));
        assert!(t.is_empty());
        assert!(t.range(&[Value::Num(0.0)], 10.0).is_empty());
        assert!(t.knn(&[Value::Num(0.0)], 3).is_empty());

        let one = vec![vec![Value::Num(1.0)]];
        let t = VpTree::new(&one, TupleDistance::numeric(1));
        assert_eq!(t.knn(&[Value::Num(0.0)], 3), vec![(0, 1.0)]);
    }

    #[test]
    fn duplicate_points() {
        let data = vec![
            vec![Value::Num(1.0)],
            vec![Value::Num(1.0)],
            vec![Value::Num(1.0)],
            vec![Value::Num(5.0)],
        ];
        let t = VpTree::new(&data, TupleDistance::numeric(1));
        let hits = t.range(&[Value::Num(1.0)], 0.0);
        assert_eq!(hits.len(), 3);
        let nn = t.knn(&[Value::Num(1.0)], 4);
        assert_eq!(nn.len(), 4);
        assert_eq!(nn[3].1, 4.0);
    }

    #[test]
    fn vpnodes_prefix_build_ignores_tail() {
        let data = rows_2d(50);
        let dist = TupleDistance::numeric(2);
        let nodes = VpNodes::build_over(&data, &dist, 30);
        assert_eq!(nodes.len(), 30);
        let query = vec![Value::Num(5.0), Value::Num(5.0)];
        let mut hits = Vec::new();
        let mut visited = 0u64;
        let mut scan = PackedScan::new(None, &data, &dist, &query);
        nodes.range_into(&mut scan, 100.0, &mut hits, &mut visited);
        // Every row of the prefix is within 100.0; none of the tail appears.
        assert_eq!(hits.len(), 30);
        assert!(hits.iter().all(|&(id, _)| id < 30));
    }
}
