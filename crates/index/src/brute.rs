//! Linear-scan reference index.

use disc_distance::{PackedMatrix, PackedScan, TupleDistance, Value};
use disc_obs::counters;

use crate::{sort_hits, NeighborIndex};

/// Exhaustive linear scan over the rows, with per-attribute early exit in
/// the distance accumulation (`TupleDistance::dist_within`). Numeric-only
/// metrics scan a packed `f64` layout (`disc_distance::packed`) instead of
/// the `Value` rows, with identical results.
///
/// Correct for every metric; the reference backend the others are tested
/// against, and the fastest choice for small `n`.
pub struct BruteForceIndex<'a> {
    rows: &'a [Vec<Value>],
    dist: TupleDistance,
    packed: Option<PackedMatrix>,
}

impl<'a> BruteForceIndex<'a> {
    /// Builds the index: O(1) for metrics without a packed layout (just
    /// borrows the rows), one packing pass over the rows otherwise.
    pub fn new(rows: &'a [Vec<Value>], dist: TupleDistance) -> Self {
        let packed = PackedMatrix::build(rows, &dist);
        BruteForceIndex { rows, dist, packed }
    }

    /// The tuple metric in use.
    pub fn distance(&self) -> &TupleDistance {
        &self.dist
    }

    fn scan<'q>(&'q self, query: &'q [Value]) -> PackedScan<'q> {
        PackedScan::new(self.packed.as_ref(), self.rows, &self.dist, query)
    }
}

impl NeighborIndex for BruteForceIndex<'_> {
    fn len(&self) -> usize {
        self.rows.len()
    }

    fn range(&self, query: &[Value], eps: f64) -> Vec<(u32, f64)> {
        counters::BRUTE_RANGE_QUERIES.incr();
        counters::BRUTE_ROWS_VISITED.add(self.rows.len() as u64);
        let mut scan = self.scan(query);
        let mut hits = Vec::new();
        for i in 0..self.rows.len() {
            if let Some(d) = scan.dist_within(i as u32, eps) {
                hits.push((i as u32, d));
            }
        }
        hits
    }

    fn count_within(&self, query: &[Value], eps: f64) -> usize {
        counters::BRUTE_RANGE_QUERIES.incr();
        counters::BRUTE_ROWS_VISITED.add(self.rows.len() as u64);
        let mut scan = self.scan(query);
        (0..self.rows.len())
            .filter(|&i| scan.dist_within(i as u32, eps).is_some())
            .count()
    }

    fn satisfies(&self, query: &[Value], eps: f64, eta: usize) -> bool {
        counters::BRUTE_RANGE_QUERIES.incr();
        let mut scan = self.scan(query);
        let mut count = 0usize;
        let mut visited = 0u64;
        for i in 0..self.rows.len() {
            visited += 1;
            if scan.dist_within(i as u32, eps).is_some() {
                count += 1;
                if count >= eta {
                    counters::BRUTE_ROWS_VISITED.add(visited);
                    return true;
                }
            }
        }
        counters::BRUTE_ROWS_VISITED.add(visited);
        count >= eta
    }

    fn knn(&self, query: &[Value], k: usize) -> Vec<(u32, f64)> {
        counters::BRUTE_KNN_QUERIES.incr();
        if k == 0 {
            return Vec::new();
        }
        counters::BRUTE_ROWS_VISITED.add(self.rows.len() as u64);
        let mut scan = self.scan(query);
        // Bounded insertion into a sorted buffer; k is small (η ≤ a few
        // dozen) in every caller, so this beats a heap in practice.
        let mut best: Vec<(u32, f64)> = Vec::with_capacity(k + 1);
        for i in 0..self.rows.len() {
            let worst = if best.len() == k {
                best[k - 1].1
            } else {
                f64::INFINITY
            };
            if let Some(d) = scan.dist_within(i as u32, worst) {
                let pos = best
                    .binary_search_by(|p| {
                        p.1.partial_cmp(&d)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(p.0.cmp(&(i as u32)))
                    })
                    .unwrap_or_else(|e| e);
                best.insert(pos, (i as u32, d));
                if best.len() > k {
                    best.pop();
                }
            }
        }
        sort_hits(&mut best);
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(points: &[[f64; 2]]) -> Vec<Vec<Value>> {
        points
            .iter()
            .map(|p| p.iter().map(|&x| Value::Num(x)).collect())
            .collect()
    }

    fn q(x: f64, y: f64) -> Vec<Value> {
        vec![Value::Num(x), Value::Num(y)]
    }

    #[test]
    fn range_query() {
        let data = rows(&[[0.0, 0.0], [1.0, 0.0], [3.0, 4.0], [10.0, 10.0]]);
        let idx = BruteForceIndex::new(&data, TupleDistance::numeric(2));
        let mut hits = idx.range(&q(0.0, 0.0), 5.0);
        sort_hits(&mut hits);
        assert_eq!(hits.iter().map(|h| h.0).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(hits[2].1, 5.0); // boundary is inclusive
    }

    #[test]
    fn count_and_satisfies() {
        let data = rows(&[[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [9.0, 9.0]]);
        let idx = BruteForceIndex::new(&data, TupleDistance::numeric(2));
        assert_eq!(idx.count_within(&q(0.0, 0.0), 2.0), 3);
        assert!(idx.satisfies(&q(0.0, 0.0), 2.0, 3));
        assert!(!idx.satisfies(&q(0.0, 0.0), 2.0, 4));
        assert!(idx.satisfies(&q(0.0, 0.0), 2.0, 0));
    }

    #[test]
    fn knn_sorted_ascending() {
        let data = rows(&[[5.0, 0.0], [1.0, 0.0], [3.0, 0.0], [2.0, 0.0]]);
        let idx = BruteForceIndex::new(&data, TupleDistance::numeric(2));
        let nn = idx.knn(&q(0.0, 0.0), 3);
        assert_eq!(nn.iter().map(|h| h.0).collect::<Vec<_>>(), vec![1, 3, 2]);
        assert_eq!(
            nn.iter().map(|h| h.1).collect::<Vec<_>>(),
            vec![1.0, 2.0, 3.0]
        );
    }

    #[test]
    fn knn_more_than_n() {
        let data = rows(&[[1.0, 0.0]]);
        let idx = BruteForceIndex::new(&data, TupleDistance::numeric(2));
        assert_eq!(idx.knn(&q(0.0, 0.0), 5).len(), 1);
        assert!(idx.kth_distance(&q(0.0, 0.0), 5).is_none());
        assert_eq!(idx.kth_distance(&q(0.0, 0.0), 1), Some(1.0));
        assert_eq!(idx.kth_distance(&q(0.0, 0.0), 0), Some(0.0));
    }

    #[test]
    fn knn_zero() {
        let data = rows(&[[1.0, 0.0]]);
        let idx = BruteForceIndex::new(&data, TupleDistance::numeric(2));
        assert!(idx.knn(&q(0.0, 0.0), 0).is_empty());
    }

    #[test]
    fn empty_index() {
        let data: Vec<Vec<Value>> = Vec::new();
        let idx = BruteForceIndex::new(&data, TupleDistance::numeric(2));
        assert!(idx.is_empty());
        assert!(idx.range(&q(0.0, 0.0), 1.0).is_empty());
    }

    #[test]
    fn knn_tie_break_by_id() {
        let data = rows(&[[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0]]);
        let idx = BruteForceIndex::new(&data, TupleDistance::numeric(2));
        let nn = idx.knn(&q(0.0, 0.0), 2);
        assert_eq!(nn.iter().map(|h| h.0).collect::<Vec<_>>(), vec![0, 1]);
    }
}
