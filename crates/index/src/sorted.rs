//! Per-attribute sorted projections.
//!
//! The DISC recursion needs `r_ε(t_o[X])` — the tuples within ε of the
//! outlier on the *unadjusted* attributes `X` only. For numeric attributes,
//! the single-attribute ball `{t | |t[A] − q| ≤ ε}` is a contiguous run of a
//! column sorted by value, found by binary search; the recursion seeds its
//! candidate lists from the smallest such run and narrows them as `X` grows
//! (monotonicity of `Δ` in the attribute set).

use disc_distance::Value;
use disc_obs::counters;

/// A numeric column sorted by value, remembering original row ids.
pub struct SortedColumn {
    /// `(value, row id)` pairs sorted by value.
    entries: Vec<(f64, u32)>,
}

impl SortedColumn {
    /// Builds the projection of column `attr` over `rows`.
    ///
    /// Returns `None` if any cell in the column is non-numeric.
    pub fn new(rows: &[Vec<Value>], attr: usize) -> Option<Self> {
        let mut entries: Vec<(f64, u32)> = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            entries.push((row[attr].as_num()?, i as u32));
        }
        entries.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        Some(SortedColumn { entries })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the column is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn lower_bound(&self, x: f64) -> usize {
        self.entries.partition_point(|e| e.0 < x)
    }

    /// Row ids with `|value − q| ≤ eps`, in ascending value order.
    pub fn ball(&self, q: f64, eps: f64) -> impl Iterator<Item = u32> + '_ {
        counters::SORTED_BALL_QUERIES.incr();
        let lo = self.lower_bound(q - eps);
        let hi = self.entries.partition_point(|e| e.0 <= q + eps);
        self.entries[lo..hi].iter().map(|e| e.1)
    }

    /// Number of rows with `|value − q| ≤ eps`, in `O(log n)`.
    pub fn ball_size(&self, q: f64, eps: f64) -> usize {
        counters::SORTED_BALL_QUERIES.incr();
        let lo = self.lower_bound(q - eps);
        let hi = self.entries.partition_point(|e| e.0 <= q + eps);
        hi - lo
    }

    /// The distinct values of the column, ascending — the attribute's
    /// active domain, used by the exact (domain-enumeration) algorithm.
    pub fn distinct_values(&self) -> Vec<f64> {
        let mut vals: Vec<f64> = self.entries.iter().map(|e| e.0).collect();
        vals.dedup();
        vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(vals: &[f64]) -> SortedColumn {
        let rows: Vec<Vec<Value>> = vals.iter().map(|&x| vec![Value::Num(x)]).collect();
        SortedColumn::new(&rows, 0).unwrap()
    }

    #[test]
    fn ball_membership() {
        let c = col(&[5.0, 1.0, 3.0, 2.0, 8.0]);
        let ids: Vec<u32> = c.ball(2.5, 1.0).collect();
        // values within [1.5, 3.5]: 3.0 (row 2) and 2.0 (row 3).
        assert_eq!(ids, vec![3, 2]);
        assert_eq!(c.ball_size(2.5, 1.0), 2);
    }

    #[test]
    fn inclusive_boundaries() {
        let c = col(&[1.0, 2.0, 3.0]);
        assert_eq!(c.ball_size(2.0, 1.0), 3);
        assert_eq!(c.ball_size(0.0, 1.0), 1);
        assert_eq!(c.ball_size(10.0, 1.0), 0);
    }

    #[test]
    fn distinct_values_deduped() {
        let c = col(&[2.0, 1.0, 2.0, 1.0, 3.0]);
        assert_eq!(c.distinct_values(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn non_numeric_column_rejected() {
        let rows = vec![vec![Value::Text("a".into())]];
        assert!(SortedColumn::new(&rows, 0).is_none());
    }

    #[test]
    fn empty_column() {
        let c = col(&[]);
        assert!(c.is_empty());
        assert_eq!(c.ball_size(0.0, 1.0), 0);
    }
}
