//! Growable neighbor index for streaming ingest.
//!
//! The static backends borrow an immutable row slice, which is the right
//! shape while a batch is being saved but rules out appending tuples. The
//! [`DynamicIndex`] owns its rows and supports [`insert`]/[`extend`]
//! (via [`DynamicNeighborIndex`]) while answering the same
//! [`NeighborIndex`] queries with the same results and the same
//! observability counters as the static backend it mirrors:
//!
//! * **brute** — append is free; used below the auto-index threshold;
//! * **grid** — cell membership is per-row, so append updates one cell
//!   and the per-dimension key bounds (the norm-aware k-NN exhaustion
//!   bound is recomputed in `O(m)`);
//! * **vp** — the tree is built over a prefix of the rows; appends land
//!   in a tail buffer that queries scan linearly, and the tree is rebuilt
//!   over everything once the buffer exceeds `max(64, len/4)` rows.
//!
//! Backend choice mirrors [`crate::with_auto_index_sync`]: a brute scan
//! up to 512 rows, then a grid for low-dimensional finite-numeric data,
//! otherwise a VP-tree. Upgrades and migrations (e.g. a non-numeric row
//! arriving at a grid) count on `index.dynamic.rebuilds`.
//!
//! [`insert`]: DynamicNeighborIndex::insert
//! [`extend`]: DynamicNeighborIndex::extend

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use disc_distance::{PackedMatrix, PackedScan, TupleDistance, Value};
use disc_obs::counters;

use crate::grid::{cell_key, for_cell_candidates, norm_diameter, CellKey};
use crate::vptree::VpNodes;
use crate::{sort_hits, NeighborIndex};

/// A [`NeighborIndex`] that additionally supports appending rows.
///
/// Row ids are assigned in insertion order, so queries issued after an
/// insert see the new row under the id `insert` returned. Implementations
/// must answer queries identically to a freshly built static index over
/// the same rows.
pub trait DynamicNeighborIndex: NeighborIndex {
    /// Appends one row and returns its id (`== len()` before the call).
    fn insert(&mut self, row: Vec<Value>) -> u32;

    /// Appends a batch of rows in order; returns the id of the first (or
    /// `None` for an empty batch).
    fn extend(&mut self, rows: Vec<Vec<Value>>) -> Option<u32> {
        let mut first = None;
        for row in rows {
            let id = self.insert(row);
            first.get_or_insert(id);
        }
        first
    }
}

/// Rows stay on the brute-force scan until the auto-index threshold
/// (mirrors `with_auto_index_sync`).
const BRUTE_MAX: usize = 512;

/// The grid backend applies up to this arity (mirrors
/// `with_auto_index_sync`).
const GRID_MAX_ARITY: usize = 4;

enum Backend {
    Brute,
    Grid {
        cell_width: f64,
        cells: HashMap<CellKey, Vec<u32>>,
        /// Per-dimension min/max occupied cell keys, for the norm-aware
        /// exhaustion bound (`lo[d] > hi[d]` iff the grid is empty).
        lo: Vec<i64>,
        hi: Vec<i64>,
        /// Upper bound on any point-to-point distance; see
        /// [`GridIndex`](crate::GridIndex).
        max_dist: f64,
    },
    Vp {
        /// Tree over `rows[..nodes.len()]`; the tail is scanned linearly.
        nodes: VpNodes,
    },
}

/// Cumulative per-instance effort, read via [`DynamicIndex::activity`].
///
/// The global `index.*` counters aggregate across every index in the
/// process; these cells attribute the same events to one instance so a
/// sharded engine can report per-shard balance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexActivity {
    /// Range + k-NN queries answered (a grid k-NN's internal
    /// expanding-radius probes count as range queries here too, exactly
    /// as they do on the global counters).
    pub queries: u64,
    /// Candidate rows visited across all queries (same accounting as the
    /// per-backend `*.rows_visited` counters).
    pub rows_visited: u64,
    /// Full structure rebuilds (upgrades, migrations, VP-tree
    /// tail-buffer rebuilds).
    pub rebuilds: u64,
}

/// Relaxed atomics so read-only queries (`&self`) can record effort.
#[derive(Default)]
struct ActivityCells {
    queries: AtomicU64,
    rows_visited: AtomicU64,
    rebuilds: AtomicU64,
}

impl ActivityCells {
    fn record_query(&self, rows_visited: u64) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.rows_visited.fetch_add(rows_visited, Ordering::Relaxed);
    }
}

/// An owned, growable neighbor index; see the [module docs](self).
pub struct DynamicIndex {
    rows: Vec<Vec<Value>>,
    dist: TupleDistance,
    eps_hint: f64,
    backend: Backend,
    /// Packed `f64` layout mirroring `rows` (appends go to both), kept
    /// across backend upgrades; `None` when the metric has no packed
    /// layout.
    packed: Option<PackedMatrix>,
    activity: ActivityCells,
}

impl DynamicIndex {
    /// An empty index. `eps_hint` is the expected query radius (it sizes
    /// grid cells, like the `eps_hint` of [`crate::with_auto_index`]).
    pub fn new(dist: TupleDistance, eps_hint: f64) -> Self {
        let packed = PackedMatrix::build(&[], &dist);
        DynamicIndex {
            rows: Vec::new(),
            dist,
            eps_hint,
            backend: Backend::Brute,
            packed,
            activity: ActivityCells::default(),
        }
    }

    /// An index pre-loaded with `rows` (equivalent to `new` + `extend`,
    /// without intermediate rebuilds).
    pub fn from_rows(rows: Vec<Vec<Value>>, dist: TupleDistance, eps_hint: f64) -> Self {
        let packed = PackedMatrix::build(&rows, &dist);
        let mut idx = DynamicIndex {
            rows,
            dist,
            eps_hint,
            backend: Backend::Brute,
            packed,
            activity: ActivityCells::default(),
        };
        if idx.rows.len() > BRUTE_MAX {
            idx.backend = idx.build_backend();
        }
        idx
    }

    fn scan<'q>(&'q self, query: &'q [Value]) -> PackedScan<'q> {
        PackedScan::new(self.packed.as_ref(), &self.rows, &self.dist, query)
    }

    /// The indexed rows, in insertion order.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// The tuple metric in use.
    pub fn distance(&self) -> &TupleDistance {
        &self.dist
    }

    /// Which backend currently serves queries (`"brute"`, `"grid"`, or
    /// `"vp"`) — diagnostics only.
    pub fn backend_name(&self) -> &'static str {
        match self.backend {
            Backend::Brute => "brute",
            Backend::Grid { .. } => "grid",
            Backend::Vp { .. } => "vp",
        }
    }

    /// Cumulative effort expended by *this instance* (the global
    /// `index.*` counters sum the same events process-wide).
    pub fn activity(&self) -> IndexActivity {
        IndexActivity {
            queries: self.activity.queries.load(Ordering::Relaxed),
            rows_visited: self.activity.rows_visited.load(Ordering::Relaxed),
            rebuilds: self.activity.rebuilds.load(Ordering::Relaxed),
        }
    }

    /// Picks and builds the non-brute backend for the current rows.
    fn build_backend(&self) -> Backend {
        if self.dist.arity() <= GRID_MAX_ARITY {
            if let Some(grid) = self.try_build_grid() {
                return grid;
            }
        }
        Backend::Vp {
            nodes: VpNodes::build(&self.rows, &self.dist),
        }
    }

    /// Grid over all current rows, or `None` if any row has a coordinate
    /// that is not a finite number.
    fn try_build_grid(&self) -> Option<Backend> {
        let m = self.dist.arity();
        let w = self.eps_hint.max(1e-9);
        let mut cells: HashMap<CellKey, Vec<u32>> = HashMap::new();
        let mut lo = vec![i64::MAX; m];
        let mut hi = vec![i64::MIN; m];
        for (i, row) in self.rows.iter().enumerate() {
            let key = cell_key(row, w)?;
            for d in 0..m {
                lo[d] = lo[d].min(key[d]);
                hi[d] = hi[d].max(key[d]);
            }
            cells.entry(key).or_default().push(i as u32);
        }
        let max_dist = grid_max_dist(&lo, &hi, w, &self.dist);
        Some(Backend::Grid {
            cell_width: w,
            cells,
            lo,
            hi,
            max_dist,
        })
    }

    /// Post-insert maintenance: upgrade off the brute scan past the
    /// threshold, rebuild the VP-tree when the tail buffer is too large.
    fn maintain(&mut self) {
        match &mut self.backend {
            Backend::Brute => {
                if self.rows.len() > BRUTE_MAX {
                    self.backend = self.build_backend();
                    counters::DYNAMIC_REBUILDS.incr();
                    self.activity.rebuilds.fetch_add(1, Ordering::Relaxed);
                }
            }
            Backend::Grid { .. } => {}
            Backend::Vp { nodes } => {
                let buffered = self.rows.len() - nodes.len();
                if buffered > (self.rows.len() / 4).max(64) {
                    *nodes = VpNodes::build(&self.rows, &self.dist);
                    counters::DYNAMIC_REBUILDS.incr();
                    self.activity.rebuilds.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// The grid's norm-aware k-NN exhaustion bound over the occupied key box
/// `[lo, hi]` (mirrors the static [`GridIndex`](crate::GridIndex)).
fn grid_max_dist(lo: &[i64], hi: &[i64], cell_width: f64, dist: &TupleDistance) -> f64 {
    let mut span = 0.0f64;
    for (l, h) in lo.iter().zip(hi) {
        if l <= h {
            span = span.max((h - l + 2) as f64 * cell_width);
        }
    }
    norm_diameter(span, lo.len(), dist) + cell_width
}

impl DynamicNeighborIndex for DynamicIndex {
    fn insert(&mut self, row: Vec<Value>) -> u32 {
        let id = self.rows.len() as u32;
        let mut migrate_to_vp = false;
        if let Backend::Grid {
            cell_width,
            cells,
            lo,
            hi,
            max_dist,
        } = &mut self.backend
        {
            match cell_key(&row, *cell_width) {
                Some(key) => {
                    for d in 0..key.len() {
                        lo[d] = lo[d].min(key[d]);
                        hi[d] = hi[d].max(key[d]);
                    }
                    cells.entry(key).or_default().push(id);
                    *max_dist = grid_max_dist(lo, hi, *cell_width, &self.dist);
                }
                // The new row has no grid cell — fall back to the
                // metric-only tree, as the auto-index does at build time.
                None => migrate_to_vp = true,
            }
        }
        if let Some(packed) = &mut self.packed {
            packed.push_row(&row);
        }
        self.rows.push(row);
        if migrate_to_vp {
            self.backend = Backend::Vp {
                nodes: VpNodes::build(&self.rows, &self.dist),
            };
            counters::DYNAMIC_REBUILDS.incr();
            self.activity.rebuilds.fetch_add(1, Ordering::Relaxed);
        } else {
            self.maintain();
        }
        id
    }
}

impl NeighborIndex for DynamicIndex {
    fn len(&self) -> usize {
        self.rows.len()
    }

    fn range(&self, query: &[Value], eps: f64) -> Vec<(u32, f64)> {
        let mut scan = self.scan(query);
        match &self.backend {
            Backend::Brute => {
                counters::BRUTE_RANGE_QUERIES.incr();
                counters::BRUTE_ROWS_VISITED.add(self.rows.len() as u64);
                self.activity.record_query(self.rows.len() as u64);
                let mut hits = Vec::new();
                for i in 0..self.rows.len() {
                    if let Some(d) = scan.dist_within(i as u32, eps) {
                        hits.push((i as u32, d));
                    }
                }
                hits
            }
            Backend::Grid {
                cell_width, cells, ..
            } => {
                counters::GRID_RANGE_QUERIES.incr();
                let radius_cells = (eps / cell_width).ceil() as i64 + 1;
                let m = self.dist.arity();
                let mut hits = Vec::new();
                let mut visited = 0u64;
                for_cell_candidates(cells, m, *cell_width, query, radius_cells, |id| {
                    visited += 1;
                    if let Some(d) = scan.dist_within(id, eps) {
                        hits.push((id, d));
                    }
                });
                counters::GRID_ROWS_VISITED.add(visited);
                self.activity.record_query(visited);
                hits
            }
            Backend::Vp { nodes } => {
                counters::VPTREE_RANGE_QUERIES.incr();
                let mut hits = Vec::new();
                let mut visited = 0u64;
                nodes.range_into(&mut scan, eps, &mut hits, &mut visited);
                for i in nodes.len()..self.rows.len() {
                    visited += 1;
                    if let Some(d) = scan.dist_within(i as u32, eps) {
                        hits.push((i as u32, d));
                    }
                }
                counters::VPTREE_ROWS_VISITED.add(visited);
                self.activity.record_query(visited);
                hits
            }
        }
    }

    fn knn(&self, query: &[Value], k: usize) -> Vec<(u32, f64)> {
        if k == 0 || self.rows.is_empty() {
            return Vec::new();
        }
        match &self.backend {
            Backend::Brute => {
                counters::BRUTE_KNN_QUERIES.incr();
                counters::BRUTE_ROWS_VISITED.add(self.rows.len() as u64);
                self.activity.record_query(self.rows.len() as u64);
                let mut scan = self.scan(query);
                let mut best = Vec::with_capacity(k + 1);
                merge_knn(&mut best, k, 0..self.rows.len() as u32, &mut scan);
                sort_hits(&mut best);
                best
            }
            Backend::Grid {
                cell_width,
                max_dist,
                ..
            } => {
                counters::GRID_KNN_QUERIES.incr();
                // Row visits are recorded by the internal `range` calls.
                self.activity.record_query(0);
                // Expanding-radius search, identical to the static grid:
                // grow the ball until at least k hits are found *and* the
                // k-th distance is covered by the scanned radius.
                let mut eps = *cell_width;
                loop {
                    let mut hits = self.range(query, eps);
                    if hits.len() >= k {
                        sort_hits(&mut hits);
                        if hits[k - 1].1 <= eps {
                            hits.truncate(k);
                            return hits;
                        }
                    }
                    if eps > *max_dist {
                        let anchor = self.dist.dist(query, &self.rows[0]);
                        let mut hits = self.range(query, anchor + max_dist);
                        sort_hits(&mut hits);
                        hits.truncate(k);
                        return hits;
                    }
                    eps *= 2.0;
                }
            }
            Backend::Vp { nodes } => {
                counters::VPTREE_KNN_QUERIES.incr();
                let mut scan = self.scan(query);
                let mut best = Vec::with_capacity(k + 1);
                let mut visited = 0u64;
                nodes.knn_into(&mut scan, k, &mut best, &mut visited);
                let tail = nodes.len() as u32..self.rows.len() as u32;
                visited += (self.rows.len() - nodes.len()) as u64;
                merge_knn(&mut best, k, tail, &mut scan);
                counters::VPTREE_ROWS_VISITED.add(visited);
                self.activity.record_query(visited);
                sort_hits(&mut best);
                best
            }
        }
    }
}

/// Merges the rows named by `ids` into the sorted k-best candidate list
/// `best` (ascending by distance, ties by id), using the incumbent k-th
/// distance as an early-exit threshold.
fn merge_knn(
    best: &mut Vec<(u32, f64)>,
    k: usize,
    ids: impl Iterator<Item = u32>,
    scan: &mut PackedScan<'_>,
) {
    for i in ids {
        let worst = if best.len() == k {
            best[k - 1].1
        } else {
            f64::INFINITY
        };
        if let Some(d) = scan.dist_within(i, worst) {
            let pos = best
                .binary_search_by(|p| {
                    p.1.partial_cmp(&d)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(p.0.cmp(&i))
                })
                .unwrap_or_else(|e| e);
            best.insert(pos, (i, d));
            if best.len() > k {
                best.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForceIndex;

    fn scatter(n: usize, m: usize, seed: u64) -> Vec<Vec<Value>> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                (0..m)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        Value::Num(((state >> 33) % 1000) as f64 / 50.0)
                    })
                    .collect()
            })
            .collect()
    }

    fn assert_matches_brute(idx: &DynamicIndex, data: &[Vec<Value>], queries: &[Vec<Value>]) {
        let brute = BruteForceIndex::new(data, idx.distance().clone());
        for query in queries {
            for eps in [0.3, 2.0, 10.0] {
                let mut a = idx.range(query, eps);
                let mut b = brute.range(query, eps);
                sort_hits(&mut a);
                sort_hits(&mut b);
                assert_eq!(a, b, "range eps={eps} backend={}", idx.backend_name());
            }
            for k in [1, 5, 23] {
                let a = idx.knn(query, k);
                let b = brute.knn(query, k);
                assert_eq!(a, b, "knn k={k} backend={}", idx.backend_name());
            }
        }
    }

    #[test]
    fn brute_stage_matches_static() {
        let data = scatter(100, 2, 7);
        let mut idx = DynamicIndex::new(TupleDistance::numeric(2), 1.0);
        for row in &data {
            idx.insert(row.clone());
        }
        assert_eq!(idx.backend_name(), "brute");
        assert_matches_brute(&idx, &data, &scatter(5, 2, 99));
    }

    #[test]
    fn upgrades_to_grid_and_matches() {
        let data = scatter(700, 2, 11);
        let mut idx = DynamicIndex::new(TupleDistance::numeric(2), 1.0);
        for row in &data {
            idx.insert(row.clone());
        }
        assert_eq!(idx.backend_name(), "grid");
        assert_matches_brute(&idx, &data, &scatter(5, 2, 5));
        // Far-outside query exercises the exhaustion fallback.
        let far = vec![Value::Num(-500.0), Value::Num(900.0)];
        assert_matches_brute(&idx, &data, &[far]);
    }

    #[test]
    fn grid_incremental_inserts_keep_knn_bound_correct() {
        // Insert a far-away point after the upgrade: the exhaustion bound
        // must stretch with the occupied box.
        let mut data = scatter(600, 2, 3);
        let mut idx = DynamicIndex::new(TupleDistance::numeric(2), 1.0);
        for row in &data {
            idx.insert(row.clone());
        }
        let outpost = vec![Value::Num(5000.0), Value::Num(-4000.0)];
        idx.insert(outpost.clone());
        data.push(outpost);
        assert_eq!(idx.backend_name(), "grid");
        assert_matches_brute(
            &idx,
            &data,
            &[vec![Value::Num(2000.0), Value::Num(-2000.0)]],
        );
    }

    #[test]
    fn upgrades_to_vp_for_high_arity_and_matches() {
        let data = scatter(600, 5, 13);
        let mut idx = DynamicIndex::new(TupleDistance::numeric(5), 1.0);
        for row in &data {
            idx.insert(row.clone());
        }
        assert_eq!(idx.backend_name(), "vp");
        assert_matches_brute(&idx, &data, &scatter(4, 5, 77));
    }

    #[test]
    fn vp_buffer_and_rebuild_match() {
        let mut data = scatter(600, 5, 17);
        let dist = TupleDistance::numeric(5);
        let mut idx = DynamicIndex::from_rows(data.clone(), dist, 1.0);
        assert_eq!(idx.backend_name(), "vp");
        // Push enough rows to cross the rebuild threshold at least once,
        // checking equivalence while rows sit in the tail buffer.
        for (i, row) in scatter(300, 5, 23).into_iter().enumerate() {
            idx.insert(row.clone());
            data.push(row);
            if i % 97 == 0 {
                assert_matches_brute(&idx, &data, &scatter(2, 5, i as u64));
            }
        }
        assert_matches_brute(&idx, &data, &scatter(3, 5, 41));
    }

    #[test]
    fn grid_migrates_to_vp_on_non_numeric_row() {
        let mut data = scatter(600, 2, 19);
        let mut idx = DynamicIndex::from_rows(data.clone(), TupleDistance::numeric(2), 1.0);
        assert_eq!(idx.backend_name(), "grid");
        let bad = vec![Value::Null, Value::Num(1.0)];
        idx.insert(bad.clone());
        data.push(bad);
        assert_eq!(idx.backend_name(), "vp");
        assert_matches_brute(&idx, &data, &scatter(3, 2, 29));
    }

    #[test]
    fn extend_assigns_sequential_ids() {
        let mut idx = DynamicIndex::new(TupleDistance::numeric(1), 1.0);
        assert_eq!(idx.extend(Vec::new()), None);
        assert_eq!(
            idx.extend(vec![vec![Value::Num(1.0)], vec![Value::Num(2.0)]]),
            Some(0)
        );
        assert_eq!(idx.extend(vec![vec![Value::Num(3.0)]]), Some(2));
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.kth_distance(&[Value::Num(0.0)], 2), Some(2.0));
    }

    #[test]
    fn works_on_text_data() {
        let words = ["cat", "cart", "dog", "dot", "zebra", "care", "dart"];
        let data: Vec<Vec<Value>> = words
            .iter()
            .map(|s| vec![Value::Text(s.to_string())])
            .collect();
        let mut idx = DynamicIndex::new(TupleDistance::textual(1), 1.0);
        for row in &data {
            idx.insert(row.clone());
        }
        let brute = BruteForceIndex::new(&data, TupleDistance::textual(1));
        let query = vec![Value::Text("cot".into())];
        let mut a = idx.range(&query, 1.0);
        let mut b = brute.range(&query, 1.0);
        sort_hits(&mut a);
        sort_hits(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn activity_attributes_effort_to_the_instance() {
        let data = scatter(100, 2, 7);
        let mut idx = DynamicIndex::new(TupleDistance::numeric(2), 1.0);
        for row in &data {
            idx.insert(row.clone());
        }
        assert_eq!(idx.activity(), IndexActivity::default());
        idx.range(&[Value::Num(1.0), Value::Num(2.0)], 0.5);
        idx.knn(&[Value::Num(1.0), Value::Num(2.0)], 3);
        let a = idx.activity();
        assert_eq!(a.queries, 2);
        assert_eq!(a.rows_visited, 200); // two brute scans over 100 rows
        assert_eq!(a.rebuilds, 0);
        // Crossing the brute threshold counts one rebuild on the
        // instance, mirroring `index.dynamic.rebuilds`.
        for row in scatter(500, 2, 9) {
            idx.insert(row);
        }
        assert_eq!(idx.activity().rebuilds, 1);
        // A second instance starts clean: effort is per-instance.
        let other = DynamicIndex::new(TupleDistance::numeric(2), 1.0);
        assert_eq!(other.activity(), IndexActivity::default());
    }

    #[test]
    fn empty_index_queries() {
        let idx = DynamicIndex::new(TupleDistance::numeric(2), 1.0);
        assert!(idx.is_empty());
        assert!(idx
            .range(&[Value::Num(0.0), Value::Num(0.0)], 5.0)
            .is_empty());
        assert!(idx.knn(&[Value::Num(0.0), Value::Num(0.0)], 3).is_empty());
    }
}
