//! Neighbor-search substrate for the DISC reproduction.
//!
//! Everything in the paper is phrased in terms of ε-neighborhoods
//! (`r_ε(t) = {t_i ∈ r | Δ(t, t_i) ≤ ε}`, Formula 4) and η-th nearest
//! neighbors (the lower bound of Lemma 2, the `δ_η(t)` threshold of
//! Algorithm 1, line 4). This crate provides interchangeable backends for
//! those queries:
//!
//! * [`BruteForceIndex`] — linear scan with per-attribute early exit;
//!   correct for every metric, the reference implementation;
//! * [`GridIndex`] — uniform grid over numeric data; the workhorse for the
//!   low-dimensional large datasets (GPS, Flight);
//! * [`VpTree`] — vantage-point tree; works for any metric (including edit
//!   distances over text) using only the triangle inequality;
//! * [`SortedColumn`] — per-attribute sorted projections answering
//!   single-attribute ε-balls in `O(log n)`, used by the DISC recursion to
//!   seed candidate lists for unadjusted-attribute subsets.
//!
//! The static indexes borrow the row storage; the row set `r` of
//! non-outlying tuples is immutable while outliers are being saved, so no
//! backend needs interior mutability. For streaming ingest,
//! [`DynamicIndex`] owns its rows and supports appends through the
//! [`DynamicNeighborIndex`] extension trait, dispatching to the same
//! backends internally.

pub mod batch;
pub mod brute;
pub mod dynamic;
pub mod grid;
pub mod sorted;
pub mod vptree;

pub use batch::{
    count_within_batch, kth_distance_batch, parallel_map, parallel_map_catch, range_batch,
};
pub use brute::BruteForceIndex;
pub use dynamic::{DynamicIndex, DynamicNeighborIndex, IndexActivity};
pub use grid::{GridIndex, NonNumericCell};
pub use sorted::SortedColumn;
pub use vptree::{VpNodes, VpTree};

use disc_distance::Value;

/// A nearest-neighbor index over a fixed set of rows.
///
/// Row identifiers are `u32` positions into the indexed slice. Distances
/// are the tuple-level metric the index was built with.
pub trait NeighborIndex {
    /// Number of indexed rows.
    fn len(&self) -> usize;

    /// True if the index contains no rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All rows within distance `eps` of `query` (inclusive), with their
    /// distances, in arbitrary order.
    fn range(&self, query: &[Value], eps: f64) -> Vec<(u32, f64)>;

    /// Number of rows within `eps` of `query`.
    fn count_within(&self, query: &[Value], eps: f64) -> usize {
        self.range(query, eps).len()
    }

    /// True if at least `eta` rows lie within `eps` of `query` — the
    /// distance-constraint check `|r_ε(t)| ≥ η`. Backends may override
    /// this with an early-exit scan.
    fn satisfies(&self, query: &[Value], eps: f64, eta: usize) -> bool {
        self.count_within(query, eps) >= eta
    }

    /// The `k` nearest rows to `query`, sorted by ascending distance
    /// (fewer if the index holds fewer than `k` rows). Ties are broken by
    /// row id for determinism.
    fn knn(&self, query: &[Value], k: usize) -> Vec<(u32, f64)>;

    /// Distance to the `k`-th nearest row (1-based), if it exists — the
    /// `δ_k(t)` of Algorithm 1.
    fn kth_distance(&self, query: &[Value], k: usize) -> Option<f64> {
        if k == 0 {
            return Some(0.0);
        }
        let nn = self.knn(query, k);
        if nn.len() == k {
            Some(nn[k - 1].1)
        } else {
            None
        }
    }
}

/// Picks a backend by data shape and runs `f` with it.
///
/// Low-dimensional numeric data over ~512 rows gets the [`GridIndex`]
/// (cell width = the expected query radius); larger metric workloads get
/// the [`VpTree`]; small inputs use the [`BruteForceIndex`] linear scan.
pub fn with_auto_index<T>(
    rows: &[Vec<Value>],
    dist: &disc_distance::TupleDistance,
    eps_hint: f64,
    f: impl FnOnce(&dyn NeighborIndex) -> T,
) -> T {
    with_auto_index_sync(rows, dist, eps_hint, |idx| f(idx))
}

/// [`with_auto_index`] with a `Sync` bound on the passed index, for
/// callers that fan queries out across threads (see [`batch`]). Every
/// backend is plain data over borrowed rows, so this is the same set of
/// backends — the bound only surfaces the guarantee in the type.
pub fn with_auto_index_sync<T>(
    rows: &[Vec<Value>],
    dist: &disc_distance::TupleDistance,
    eps_hint: f64,
    f: impl FnOnce(&(dyn NeighborIndex + Sync)) -> T,
) -> T {
    let n = rows.len();
    let m = dist.arity();
    let numeric = rows
        .first()
        .map(|r| r.iter().all(|v| v.as_num().is_some()))
        .unwrap_or(true);
    if n <= 512 {
        f(&BruteForceIndex::new(rows, dist.clone()))
    } else if numeric && m <= 4 {
        // The first-row numeric probe is only a heuristic: a later row may
        // still hold a Null (e.g. `--non-finite as-null`) or a non-finite
        // number the grid cannot host. Fall back to the metric-only tree
        // instead of panicking.
        match GridIndex::try_new(rows, dist.clone(), eps_hint.max(1e-9)) {
            Ok(grid) => f(&grid),
            Err(_) => f(&VpTree::new(rows, dist.clone())),
        }
    } else {
        f(&VpTree::new(rows, dist.clone()))
    }
}

/// Sorts `(id, dist)` pairs by distance then id — the canonical result
/// ordering shared by all backends.
pub(crate) fn sort_hits(hits: &mut [(u32, f64)]) {
    hits.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
}
