//! Parallel batch queries over a shared read-only index.
//!
//! Every [`NeighborIndex`] backend is plain data —
//! borrowed rows, a metric, and precomputed structure — so a built index
//! is `Sync` and can serve queries from many threads at once. The helpers
//! here fan a batch of queries out over `workers` scoped threads
//! (`crossbeam::thread::scope`) and return results **in query order**, so
//! callers observe results bit-identical to a sequential loop no matter
//! the worker count.
//!
//! Work is distributed by an atomic cursor (one query at a time), which
//! keeps workers busy even when per-query cost is skewed — range queries
//! in dense regions can be orders of magnitude more expensive than in
//! sparse ones.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use disc_distance::Value;

use crate::NeighborIndex;

/// Renders a panic payload (the `Box<dyn Any>` from `catch_unwind`) as a
/// human-readable message. `panic!` with a literal yields `&str`, with a
/// format string yields `String`; anything else gets a generic label.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Applies `f` to every item, fanning out over `workers` threads, and
/// returns the results in item order. `workers <= 1` (or a single item)
/// runs the plain sequential loop on the calling thread.
///
/// The parallel path is deterministic: results are tagged with their item
/// index and reassembled in order, so the output is identical to the
/// sequential path for any pure `f`.
pub fn parallel_map<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, U)> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (cursor, f) = (&cursor, &f);
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            return local;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, u)| u).collect()
}

/// [`parallel_map`] with per-item panic isolation: each invocation of `f`
/// runs under `catch_unwind`, so one panicking item becomes an
/// `Err(message)` in its slot instead of aborting the whole batch (in the
/// parallel case, tearing down every worker thread with it).
///
/// Results are returned in item order for any worker count, and `workers
/// <= 1` runs the same catching loop sequentially on the calling thread —
/// so failure *reporting* is deterministic and sequential/parallel
/// equivalent as long as `f` fails deterministically.
pub fn parallel_map_catch<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<Result<U, String>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    parallel_map(items, workers, |i, t| {
        catch_unwind(AssertUnwindSafe(|| f(i, t))).map_err(panic_message)
    })
}

/// Batch [`NeighborIndex::range`]: all rows within `eps` of each query,
/// in query order.
pub fn range_batch(
    idx: &(dyn NeighborIndex + Sync),
    queries: &[Vec<Value>],
    eps: f64,
    workers: usize,
) -> Vec<Vec<(u32, f64)>> {
    parallel_map(queries, workers, |_, q| idx.range(q, eps))
}

/// Batch [`NeighborIndex::count_within`], in query order.
pub fn count_within_batch(
    idx: &(dyn NeighborIndex + Sync),
    queries: &[Vec<Value>],
    eps: f64,
    workers: usize,
) -> Vec<usize> {
    parallel_map(queries, workers, |_, q| idx.count_within(q, eps))
}

/// Batch [`NeighborIndex::kth_distance`] (the `δ_k(t)` of Algorithm 1),
/// in query order.
pub fn kth_distance_batch(
    idx: &(dyn NeighborIndex + Sync),
    queries: &[Vec<Value>],
    k: usize,
    workers: usize,
) -> Vec<Option<f64>> {
    parallel_map(queries, workers, |_, q| idx.kth_distance(q, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BruteForceIndex;
    use disc_distance::TupleDistance;

    fn grid_rows(n: usize) -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| vec![Value::Num((i % 25) as f64), Value::Num((i / 25) as f64)])
            .collect()
    }

    #[test]
    fn parallel_map_matches_sequential_for_any_worker_count() {
        let items: Vec<u64> = (0..101).collect();
        let seq = parallel_map(&items, 1, |i, &x| x * 3 + i as u64);
        for workers in [2, 3, 4, 7, 16, 200] {
            let par = parallel_map(&items, workers, |i, &x| x * 3 + i as u64);
            assert_eq!(par, seq, "workers = {workers}");
        }
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[9u32], 4, |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn parallel_map_catch_isolates_panics_in_item_order() {
        let items: Vec<u32> = (0..37).collect();
        let f = |_: usize, &x: &u32| {
            if x % 10 == 3 {
                panic!("boom at {x}");
            }
            x * 2
        };
        let seq = parallel_map_catch(&items, 1, f);
        for workers in [1usize, 2, 4, 9] {
            let got = parallel_map_catch(&items, workers, f);
            assert_eq!(got.len(), items.len());
            for (i, r) in got.iter().enumerate() {
                if i % 10 == 3 {
                    assert_eq!(r.as_ref().unwrap_err(), &format!("boom at {i}"));
                } else {
                    assert_eq!(r.as_ref().unwrap(), &(i as u32 * 2));
                }
            }
            // Failure reporting is identical to the sequential run.
            assert_eq!(got, seq, "workers = {workers}");
        }
    }

    #[test]
    fn parallel_map_catch_without_panics_matches_parallel_map() {
        let items: Vec<u64> = (0..50).collect();
        let plain = parallel_map(&items, 4, |i, &x| x + i as u64);
        let caught = parallel_map_catch(&items, 4, |i, &x| x + i as u64);
        let unwrapped: Vec<u64> = caught.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(unwrapped, plain);
    }

    #[test]
    fn parallel_map_catch_reports_non_string_payloads() {
        let items = [1u8];
        let got = parallel_map_catch(&items, 1, |_, _| -> u8 {
            std::panic::panic_any(42i32);
        });
        assert_eq!(got[0].as_ref().unwrap_err(), "non-string panic payload");
    }

    #[test]
    fn batch_queries_match_sequential_loops() {
        let rows = grid_rows(200);
        let dist = TupleDistance::numeric(2);
        let idx = BruteForceIndex::new(&rows, dist);
        let queries: Vec<Vec<Value>> = rows.iter().step_by(7).cloned().collect();

        let counts = count_within_batch(&idx, &queries, 1.5, 4);
        let kth = kth_distance_batch(&idx, &queries, 3, 4);
        let ranges = range_batch(&idx, &queries, 1.5, 4);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(counts[i], idx.count_within(q, 1.5));
            assert_eq!(kth[i], idx.kth_distance(q, 3));
            assert_eq!(ranges[i], idx.range(q, 1.5));
        }
    }
}
