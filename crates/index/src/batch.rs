//! Parallel batch queries over a shared read-only index.
//!
//! Every [`NeighborIndex`](crate::NeighborIndex) backend is plain data —
//! borrowed rows, a metric, and precomputed structure — so a built index
//! is `Sync` and can serve queries from many threads at once. The helpers
//! here fan a batch of queries out over `workers` scoped threads
//! (`crossbeam::thread::scope`) and return results **in query order**, so
//! callers observe results bit-identical to a sequential loop no matter
//! the worker count.
//!
//! Work is distributed by an atomic cursor (one query at a time), which
//! keeps workers busy even when per-query cost is skewed — range queries
//! in dense regions can be orders of magnitude more expensive than in
//! sparse ones.

use std::sync::atomic::{AtomicUsize, Ordering};

use disc_distance::Value;

use crate::NeighborIndex;

/// Applies `f` to every item, fanning out over `workers` threads, and
/// returns the results in item order. `workers <= 1` (or a single item)
/// runs the plain sequential loop on the calling thread.
///
/// The parallel path is deterministic: results are tagged with their item
/// index and reassembled in order, so the output is identical to the
/// sequential path for any pure `f`.
pub fn parallel_map<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, U)> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (cursor, f) = (&cursor, &f);
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            return local;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, u)| u).collect()
}

/// Batch [`NeighborIndex::range`]: all rows within `eps` of each query,
/// in query order.
pub fn range_batch(
    idx: &(dyn NeighborIndex + Sync),
    queries: &[Vec<Value>],
    eps: f64,
    workers: usize,
) -> Vec<Vec<(u32, f64)>> {
    parallel_map(queries, workers, |_, q| idx.range(q, eps))
}

/// Batch [`NeighborIndex::count_within`], in query order.
pub fn count_within_batch(
    idx: &(dyn NeighborIndex + Sync),
    queries: &[Vec<Value>],
    eps: f64,
    workers: usize,
) -> Vec<usize> {
    parallel_map(queries, workers, |_, q| idx.count_within(q, eps))
}

/// Batch [`NeighborIndex::kth_distance`] (the `δ_k(t)` of Algorithm 1),
/// in query order.
pub fn kth_distance_batch(
    idx: &(dyn NeighborIndex + Sync),
    queries: &[Vec<Value>],
    k: usize,
    workers: usize,
) -> Vec<Option<f64>> {
    parallel_map(queries, workers, |_, q| idx.kth_distance(q, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BruteForceIndex;
    use disc_distance::TupleDistance;

    fn grid_rows(n: usize) -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| vec![Value::Num((i % 25) as f64), Value::Num((i / 25) as f64)])
            .collect()
    }

    #[test]
    fn parallel_map_matches_sequential_for_any_worker_count() {
        let items: Vec<u64> = (0..101).collect();
        let seq = parallel_map(&items, 1, |i, &x| x * 3 + i as u64);
        for workers in [2, 3, 4, 7, 16, 200] {
            let par = parallel_map(&items, workers, |i, &x| x * 3 + i as u64);
            assert_eq!(par, seq, "workers = {workers}");
        }
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[9u32], 4, |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn batch_queries_match_sequential_loops() {
        let rows = grid_rows(200);
        let dist = TupleDistance::numeric(2);
        let idx = BruteForceIndex::new(&rows, dist);
        let queries: Vec<Vec<Value>> = rows.iter().step_by(7).cloned().collect();

        let counts = count_within_batch(&idx, &queries, 1.5, 4);
        let kth = kth_distance_batch(&idx, &queries, 3, 4);
        let ranges = range_batch(&idx, &queries, 1.5, 4);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(counts[i], idx.count_within(q, 1.5));
            assert_eq!(kth[i], idx.kth_distance(q, 3));
            assert_eq!(ranges[i], idx.range(q, 1.5));
        }
    }
}
