//! Uniform grid index over numeric data.
//!
//! Cells have side `cell_width`; a range query with radius `eps` only needs
//! cells whose coordinates differ by at most `ceil(eps / cell_width)` in
//! every dimension, because for any `L^p` norm (p ≥ 1) the per-coordinate
//! difference lower-bounds the tuple distance. The workhorse backend for
//! the paper's low-dimensional large datasets (GPS and Flight, m = 3).

use std::collections::HashMap;

use disc_distance::{TupleDistance, Value};

use crate::{NeighborIndex};

/// Grid cell coordinates (one `i64` per dimension).
type CellKey = Vec<i64>;

/// A uniform grid over fully numeric rows.
pub struct GridIndex<'a> {
    rows: &'a [Vec<Value>],
    dist: TupleDistance,
    cell_width: f64,
    cells: HashMap<CellKey, Vec<u32>>,
    m: usize,
    /// Upper bound on any point-to-point distance (diameter of the
    /// occupied bounding box plus slack), precomputed so the expanding
    /// k-NN search can detect exhaustion in O(1).
    max_dist: f64,
}

impl<'a> GridIndex<'a> {
    /// Builds the grid. `cell_width` is typically the expected query radius
    /// ε; any positive value is correct.
    ///
    /// # Panics
    /// Panics if `cell_width ≤ 0` or any row contains a non-numeric value.
    pub fn new(rows: &'a [Vec<Value>], dist: TupleDistance, cell_width: f64) -> Self {
        assert!(cell_width > 0.0, "cell width must be positive");
        let m = dist.arity();
        let mut cells: HashMap<CellKey, Vec<u32>> = HashMap::new();
        for (i, row) in rows.iter().enumerate() {
            let key = Self::key_of(row, cell_width);
            cells.entry(key).or_default().push(i as u32);
        }
        let max_dist = {
            let mut span = 0.0f64;
            for d in 0..m {
                let (mut lo, mut hi) = (i64::MAX, i64::MIN);
                for key in cells.keys() {
                    lo = lo.min(key[d]);
                    hi = hi.max(key[d]);
                }
                if lo <= hi {
                    span = span.max((hi - lo + 2) as f64 * cell_width);
                }
            }
            (span * span * m as f64).sqrt() + cell_width
        };
        GridIndex { rows, dist, cell_width, cells, m, max_dist }
    }

    fn key_of(row: &[Value], w: f64) -> CellKey {
        row.iter()
            .map(|v| (v.expect_num() / w).floor() as i64)
            .collect()
    }

    /// Number of occupied cells (diagnostics).
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// Visits every row whose cell lies within `radius_cells` of the
    /// query's cell in Chebyshev distance. Chooses between enumerating the
    /// cell neighborhood and scanning the occupied-cell map, whichever is
    /// smaller.
    fn for_candidates(&self, query: &[Value], radius_cells: i64, mut visit: impl FnMut(u32)) {
        let qkey = Self::key_of(query, self.cell_width);
        let span = (2 * radius_cells + 1) as f64;
        let enumerate_cost = span.powi(self.m as i32);
        if enumerate_cost <= 4.0 * self.cells.len() as f64 {
            // Enumerate the (2r+1)^m neighborhood via an odometer.
            let mut offsets = vec![-radius_cells; self.m];
            'outer: loop {
                let key: CellKey = qkey.iter().zip(&offsets).map(|(q, o)| q + o).collect();
                if let Some(ids) = self.cells.get(&key) {
                    for &id in ids {
                        visit(id);
                    }
                }
                // Advance the odometer.
                for digit in offsets.iter_mut() {
                    *digit += 1;
                    if *digit <= radius_cells {
                        continue 'outer;
                    }
                    *digit = -radius_cells;
                }
                break;
            }
        } else {
            for (key, ids) in &self.cells {
                let near = key
                    .iter()
                    .zip(&qkey)
                    .all(|(c, q)| (c - q).abs() <= radius_cells);
                if near {
                    for &id in ids {
                        visit(id);
                    }
                }
            }
        }
    }
}

impl NeighborIndex for GridIndex<'_> {
    fn len(&self) -> usize {
        self.rows.len()
    }

    fn range(&self, query: &[Value], eps: f64) -> Vec<(u32, f64)> {
        let radius_cells = (eps / self.cell_width).ceil() as i64 + 1;
        let mut hits = Vec::new();
        self.for_candidates(query, radius_cells, |id| {
            if let Some(d) = self.dist.dist_within(query, &self.rows[id as usize], eps) {
                hits.push((id, d));
            }
        });
        hits
    }

    fn knn(&self, query: &[Value], k: usize) -> Vec<(u32, f64)> {
        if k == 0 || self.rows.is_empty() {
            return Vec::new();
        }
        // Expanding-radius search: grow the ball until at least k hits are
        // found *and* the k-th distance is covered by the scanned radius
        // (so nothing closer can hide in an unscanned cell).
        let mut eps = self.cell_width;
        loop {
            let mut hits = self.range(query, eps);
            if hits.len() >= k {
                crate::sort_hits(&mut hits);
                if hits[k - 1].1 <= eps {
                    hits.truncate(k);
                    return hits;
                }
            }
            if eps > self.max_dist {
                // The data's diameter is exhausted but the query may lie
                // far outside the indexed box: a radius of (distance to
                // any anchor point) + diameter covers every row by the
                // triangle inequality.
                let anchor = self.dist.dist(query, &self.rows[0]);
                let mut hits = self.range(query, anchor + self.max_dist);
                crate::sort_hits(&mut hits);
                hits.truncate(k);
                return hits;
            }
            eps *= 2.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForceIndex;
    use crate::sort_hits;

    fn rows(points: &[[f64; 2]]) -> Vec<Vec<Value>> {
        points
            .iter()
            .map(|p| p.iter().map(|&x| Value::Num(x)).collect())
            .collect()
    }

    fn q(x: f64, y: f64) -> Vec<Value> {
        vec![Value::Num(x), Value::Num(y)]
    }

    fn grid_points(n: usize) -> Vec<Vec<Value>> {
        let side = (n as f64).sqrt().ceil() as usize;
        (0..n)
            .map(|i| q(0.37 * (i % side) as f64, 0.73 * (i / side) as f64))
            .collect()
    }

    #[test]
    fn range_matches_brute_force() {
        let data = grid_points(200);
        let dist = TupleDistance::numeric(2);
        let grid = GridIndex::new(&data, dist.clone(), 1.0);
        let brute = BruteForceIndex::new(&data, dist);
        for eps in [0.3, 1.0, 2.5] {
            for query in [q(1.0, 1.0), q(0.0, 0.0), q(100.0, -5.0)] {
                let mut a = grid.range(&query, eps);
                let mut b = brute.range(&query, eps);
                sort_hits(&mut a);
                sort_hits(&mut b);
                assert_eq!(a, b, "eps={eps}");
            }
        }
    }

    #[test]
    fn knn_matches_brute_force() {
        let data = grid_points(150);
        let dist = TupleDistance::numeric(2);
        let grid = GridIndex::new(&data, dist.clone(), 0.5);
        let brute = BruteForceIndex::new(&data, dist);
        for k in [1, 5, 17] {
            for query in [q(2.0, 3.0), q(-10.0, -10.0)] {
                let a = grid.knn(&query, k);
                let b = brute.knn(&query, k);
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    assert!((x.1 - y.1).abs() < 1e-12, "k={k}");
                }
            }
        }
    }

    #[test]
    fn knn_larger_than_dataset() {
        let data = rows(&[[0.0, 0.0], [1.0, 1.0]]);
        let grid = GridIndex::new(&data, TupleDistance::numeric(2), 1.0);
        assert_eq!(grid.knn(&q(0.0, 0.0), 10).len(), 2);
    }

    #[test]
    fn occupied_cells_counted() {
        let data = rows(&[[0.1, 0.1], [0.2, 0.2], [5.0, 5.0]]);
        let grid = GridIndex::new(&data, TupleDistance::numeric(2), 1.0);
        assert_eq!(grid.occupied_cells(), 2);
        assert_eq!(grid.len(), 3);
    }

    #[test]
    fn negative_coordinates() {
        let data = rows(&[[-1.5, -1.5], [-1.4, -1.4], [1.0, 1.0]]);
        let dist = TupleDistance::numeric(2);
        let grid = GridIndex::new(&data, dist.clone(), 1.0);
        let brute = BruteForceIndex::new(&data, dist);
        let mut a = grid.range(&q(-1.45, -1.45), 0.2);
        let mut b = brute.range(&q(-1.45, -1.45), 0.2);
        sort_hits(&mut a);
        sort_hits(&mut b);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cell width must be positive")]
    fn zero_cell_width_panics() {
        let data = rows(&[[0.0, 0.0]]);
        GridIndex::new(&data, TupleDistance::numeric(2), 0.0);
    }
}
