//! Uniform grid index over numeric data.
//!
//! Cells have side `cell_width`; a range query with radius `eps` only needs
//! cells whose coordinates differ by at most `ceil(eps / cell_width)` in
//! every dimension, because for any `L^p` norm (p ≥ 1, including `L^∞`)
//! the per-coordinate difference lower-bounds the tuple distance — so
//! range queries are norm-correct as-is. The k-NN exhaustion bound is the
//! norm-*dependent* part: the diameter of the occupied box is `m^{1/p}·s`
//! for `L^p` and `s` for `L^∞` (with `s` the largest per-coordinate
//! span), which [`GridIndex`] derives from
//! [`disc_distance::Norm::exponent`]. The workhorse backend for the
//! paper's low-dimensional large datasets (GPS and Flight, m = 3).
//!
//! Rows must be entirely finite numeric — [`GridIndex::try_new`] reports
//! the first offending cell (e.g. a `Value::Null` produced by
//! `--non-finite as-null`) so callers can fall back to a metric-only
//! backend. *Queries* may still be non-numeric: a query with no grid cell
//! falls back to visiting every row, degrading to brute-force semantics
//! instead of panicking.

use std::collections::HashMap;
use std::fmt;

use disc_distance::{PackedMatrix, PackedScan, TupleDistance, Value};
use disc_obs::counters;

use crate::NeighborIndex;

/// Grid cell coordinates (one `i64` per dimension).
pub(crate) type CellKey = Vec<i64>;

/// Cell of `row` on a grid of width `w`, or `None` if any coordinate is
/// not a finite number.
pub(crate) fn cell_key(row: &[Value], w: f64) -> Option<CellKey> {
    row.iter()
        .map(|v| {
            v.as_num()
                .filter(|x| x.is_finite())
                .map(|x| (x / w).floor() as i64)
        })
        .collect()
}

/// Norm-aware upper bound on any point-to-point distance when every
/// per-coordinate extent is at most `span`: `m^{1/p}·span` under `L^p`,
/// `span` under `L^∞`.
pub(crate) fn norm_diameter(span: f64, m: usize, dist: &TupleDistance) -> f64 {
    match dist.norm().exponent() {
        Some(p) => span * (m.max(1) as f64).powf(1.0 / p),
        None => span,
    }
}

/// A row cell that cannot be placed on the grid (non-numeric or
/// non-finite), reported by [`GridIndex::try_new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonNumericCell {
    /// Index of the offending row.
    pub row: usize,
    /// Index of the offending attribute within the row.
    pub attr: usize,
}

impl fmt::Display for NonNumericCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "grid index requires finite numeric data: row {}, attribute {} is not a finite number",
            self.row, self.attr
        )
    }
}

impl std::error::Error for NonNumericCell {}

/// A uniform grid over fully numeric rows.
pub struct GridIndex<'a> {
    rows: &'a [Vec<Value>],
    dist: TupleDistance,
    cell_width: f64,
    cells: HashMap<CellKey, Vec<u32>>,
    m: usize,
    /// Upper bound on any point-to-point distance (norm-aware diameter of
    /// the occupied bounding box plus slack), precomputed so the expanding
    /// k-NN search can detect exhaustion in O(1).
    max_dist: f64,
    /// Packed `f64` layout for the cell-candidate distance filter; grid
    /// rows are all finite numeric, so this is `Some` whenever the metric
    /// admits packing at all.
    packed: Option<PackedMatrix>,
}

impl<'a> GridIndex<'a> {
    /// Builds the grid. `cell_width` is typically the expected query radius
    /// ε; any positive value is correct.
    ///
    /// # Errors
    /// Returns [`NonNumericCell`] naming the first row/attribute that is
    /// not a finite number (`Value::Null`, text, `NaN`, `±∞`) — such rows
    /// have no grid cell, and non-finite coordinates would poison the
    /// exhaustion bound. Callers should fall back to a metric-only
    /// backend (`VpTree`, `BruteForceIndex`), as `with_auto_index_sync`
    /// does.
    ///
    /// # Panics
    /// Panics if `cell_width ≤ 0`.
    pub fn try_new(
        rows: &'a [Vec<Value>],
        dist: TupleDistance,
        cell_width: f64,
    ) -> Result<Self, NonNumericCell> {
        assert!(cell_width > 0.0, "cell width must be positive");
        let m = dist.arity();
        let mut cells: HashMap<CellKey, Vec<u32>> = HashMap::new();
        for (i, row) in rows.iter().enumerate() {
            match Self::key_of(row, cell_width) {
                Some(key) => cells.entry(key).or_default().push(i as u32),
                None => {
                    let attr = row
                        .iter()
                        .position(|v| !matches!(v.as_num(), Some(x) if x.is_finite()))
                        .unwrap_or(0);
                    return Err(NonNumericCell { row: i, attr });
                }
            }
        }
        let max_dist = {
            let mut span = 0.0f64;
            for d in 0..m {
                let (mut lo, mut hi) = (i64::MAX, i64::MIN);
                for key in cells.keys() {
                    lo = lo.min(key[d]);
                    hi = hi.max(key[d]);
                }
                if lo <= hi {
                    span = span.max((hi - lo + 2) as f64 * cell_width);
                }
            }
            // Per-coordinate extents of at most `span` aggregate to at
            // most `m^{1/p}·span` under L^p and `span` under L^∞ — the
            // L2-only `(span²·m).sqrt()` underestimated the L1 diameter
            // by up to `m^{1/2}`, making k-NN drop true neighbors.
            norm_diameter(span, m, &dist) + cell_width
        };
        let packed = PackedMatrix::build(rows, &dist);
        Ok(GridIndex {
            rows,
            dist,
            cell_width,
            cells,
            m,
            max_dist,
            packed,
        })
    }

    /// Builds the grid, panicking on invalid input.
    ///
    /// # Panics
    /// Panics if `cell_width ≤ 0` or any row contains a value that is not
    /// a finite number (see [`GridIndex::try_new`] for the fallible form).
    pub fn new(rows: &'a [Vec<Value>], dist: TupleDistance, cell_width: f64) -> Self {
        match Self::try_new(rows, dist, cell_width) {
            Ok(grid) => grid,
            Err(e) => panic!("{e}"),
        }
    }

    /// Cell of `row`, or `None` if any coordinate is not a finite number.
    fn key_of(row: &[Value], w: f64) -> Option<CellKey> {
        cell_key(row, w)
    }

    /// Number of occupied cells (diagnostics).
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// Visits every row whose cell lies within `radius_cells` of the
    /// query's cell in Chebyshev distance; see [`for_cell_candidates`].
    fn for_candidates(&self, query: &[Value], radius_cells: i64, visit: impl FnMut(u32)) {
        for_cell_candidates(
            &self.cells,
            self.m,
            self.cell_width,
            query,
            radius_cells,
            visit,
        );
    }
}

/// Visits every row whose cell lies within `radius_cells` of the query's
/// cell in Chebyshev distance. Chooses between enumerating the cell
/// neighborhood and scanning the occupied-cell map, whichever is smaller.
/// A query with no grid cell (non-numeric or non-finite coordinates)
/// visits every row — the per-coordinate bound cannot be evaluated, so
/// nothing can be excluded. Shared by [`GridIndex`] and the grid backend
/// of the dynamic index.
pub(crate) fn for_cell_candidates(
    cells: &HashMap<CellKey, Vec<u32>>,
    m: usize,
    cell_width: f64,
    query: &[Value],
    radius_cells: i64,
    mut visit: impl FnMut(u32),
) {
    let Some(qkey) = cell_key(query, cell_width) else {
        for ids in cells.values() {
            for &id in ids {
                visit(id);
            }
        }
        return;
    };
    let span = (2 * radius_cells + 1) as f64;
    let enumerate_cost = span.powi(m as i32);
    if enumerate_cost <= 4.0 * cells.len() as f64 {
        // Enumerate the (2r+1)^m neighborhood via an odometer.
        let mut offsets = vec![-radius_cells; m];
        'outer: loop {
            let key: CellKey = qkey.iter().zip(&offsets).map(|(q, o)| q + o).collect();
            if let Some(ids) = cells.get(&key) {
                for &id in ids {
                    visit(id);
                }
            }
            // Advance the odometer.
            for digit in offsets.iter_mut() {
                *digit += 1;
                if *digit <= radius_cells {
                    continue 'outer;
                }
                *digit = -radius_cells;
            }
            break;
        }
    } else {
        for (key, ids) in cells {
            let near = key
                .iter()
                .zip(&qkey)
                .all(|(c, q)| (c - q).abs() <= radius_cells);
            if near {
                for &id in ids {
                    visit(id);
                }
            }
        }
    }
}

impl NeighborIndex for GridIndex<'_> {
    fn len(&self) -> usize {
        self.rows.len()
    }

    fn range(&self, query: &[Value], eps: f64) -> Vec<(u32, f64)> {
        counters::GRID_RANGE_QUERIES.incr();
        let radius_cells = (eps / self.cell_width).ceil() as i64 + 1;
        let mut scan = PackedScan::new(self.packed.as_ref(), self.rows, &self.dist, query);
        let mut hits = Vec::new();
        let mut visited = 0u64;
        self.for_candidates(query, radius_cells, |id| {
            visited += 1;
            if let Some(d) = scan.dist_within(id, eps) {
                hits.push((id, d));
            }
        });
        counters::GRID_ROWS_VISITED.add(visited);
        hits
    }

    fn knn(&self, query: &[Value], k: usize) -> Vec<(u32, f64)> {
        counters::GRID_KNN_QUERIES.incr();
        if k == 0 || self.rows.is_empty() {
            return Vec::new();
        }
        // Expanding-radius search: grow the ball until at least k hits are
        // found *and* the k-th distance is covered by the scanned radius
        // (so nothing closer can hide in an unscanned cell).
        let mut eps = self.cell_width;
        loop {
            let mut hits = self.range(query, eps);
            if hits.len() >= k {
                crate::sort_hits(&mut hits);
                if hits[k - 1].1 <= eps {
                    hits.truncate(k);
                    return hits;
                }
            }
            if eps > self.max_dist {
                // The data's diameter is exhausted but the query may lie
                // far outside the indexed box: a radius of (distance to
                // any anchor point) + diameter covers every row by the
                // triangle inequality.
                let anchor = self.dist.dist(query, &self.rows[0]);
                let mut hits = self.range(query, anchor + self.max_dist);
                crate::sort_hits(&mut hits);
                hits.truncate(k);
                return hits;
            }
            eps *= 2.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForceIndex;
    use crate::sort_hits;
    use disc_distance::{Metric, Norm};

    fn rows(points: &[[f64; 2]]) -> Vec<Vec<Value>> {
        points
            .iter()
            .map(|p| p.iter().map(|&x| Value::Num(x)).collect())
            .collect()
    }

    fn q(x: f64, y: f64) -> Vec<Value> {
        vec![Value::Num(x), Value::Num(y)]
    }

    fn grid_points(n: usize) -> Vec<Vec<Value>> {
        let side = (n as f64).sqrt().ceil() as usize;
        (0..n)
            .map(|i| q(0.37 * (i % side) as f64, 0.73 * (i / side) as f64))
            .collect()
    }

    fn numeric_with_norm(m: usize, norm: Norm) -> TupleDistance {
        TupleDistance::new(vec![Metric::Absolute; m], norm)
    }

    #[test]
    fn range_matches_brute_force() {
        let data = grid_points(200);
        let dist = TupleDistance::numeric(2);
        let grid = GridIndex::new(&data, dist.clone(), 1.0);
        let brute = BruteForceIndex::new(&data, dist);
        for eps in [0.3, 1.0, 2.5] {
            for query in [q(1.0, 1.0), q(0.0, 0.0), q(100.0, -5.0)] {
                let mut a = grid.range(&query, eps);
                let mut b = brute.range(&query, eps);
                sort_hits(&mut a);
                sort_hits(&mut b);
                assert_eq!(a, b, "eps={eps}");
            }
        }
    }

    #[test]
    fn knn_matches_brute_force() {
        let data = grid_points(150);
        let dist = TupleDistance::numeric(2);
        let grid = GridIndex::new(&data, dist.clone(), 0.5);
        let brute = BruteForceIndex::new(&data, dist);
        for k in [1, 5, 17] {
            for query in [q(2.0, 3.0), q(-10.0, -10.0)] {
                let a = grid.knn(&query, k);
                let b = brute.knn(&query, k);
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    assert!((x.1 - y.1).abs() < 1e-12, "k={k}");
                }
            }
        }
    }

    /// Pinned regression for the L2-only exhaustion bound. Under L1, two
    /// rows 3·t apart have distance 3·t·span, but the old
    /// `(span²·m).sqrt()` bound was only `√3·t·span` — so for a query far
    /// outside the box the triangle-inequality fallback radius
    /// `anchor + max_dist` fell short of the second neighbor and k-NN
    /// returned 1 hit instead of 2.
    #[test]
    fn knn_l1_far_query_finds_all_neighbors() {
        let data: Vec<Vec<Value>> = vec![vec![Value::Num(0.0); 3], vec![Value::Num(100.0); 3]];
        let dist = numeric_with_norm(3, Norm::L1);
        let grid = GridIndex::new(&data, dist.clone(), 1.0);
        let query = vec![Value::Num(-50.0); 3];

        let hits = grid.knn(&query, 2);
        assert_eq!(hits.len(), 2, "L1 k-NN dropped a true neighbor");
        assert_eq!(hits[0], (0, 150.0));
        assert_eq!(hits[1], (1, 450.0));

        let brute = BruteForceIndex::new(&data, dist);
        assert_eq!(hits, brute.knn(&query, 2));
    }

    #[test]
    fn knn_linf_far_query_matches_brute() {
        let data = grid_points(60);
        let dist = numeric_with_norm(2, Norm::LInf);
        let grid = GridIndex::new(&data, dist.clone(), 0.7);
        let brute = BruteForceIndex::new(&data, dist);
        for query in [q(500.0, -300.0), q(-80.0, 0.0)] {
            for k in [1, 4, 60] {
                assert_eq!(grid.knn(&query, k), brute.knn(&query, k), "k={k}");
            }
        }
    }

    #[test]
    fn knn_empty_index_returns_empty() {
        let data: Vec<Vec<Value>> = Vec::new();
        let grid = GridIndex::new(&data, TupleDistance::numeric(2), 1.0);
        assert_eq!(grid.knn(&q(3.0, 4.0), 5), Vec::new());
        assert_eq!(grid.range(&q(3.0, 4.0), 10.0), Vec::new());
        assert_eq!(grid.kth_distance(&q(3.0, 4.0), 1), None);
    }

    #[test]
    fn knn_larger_than_dataset() {
        let data = rows(&[[0.0, 0.0], [1.0, 1.0]]);
        let grid = GridIndex::new(&data, TupleDistance::numeric(2), 1.0);
        assert_eq!(grid.knn(&q(0.0, 0.0), 10).len(), 2);
    }

    #[test]
    fn try_new_reports_first_non_numeric_cell() {
        let data = vec![q(0.0, 0.0), vec![Value::Num(1.0), Value::Null]];
        let err = GridIndex::try_new(&data, TupleDistance::numeric(2), 1.0)
            .err()
            .unwrap();
        assert_eq!(err, NonNumericCell { row: 1, attr: 1 });
        assert!(err.to_string().contains("row 1, attribute 1"));

        let data = vec![vec![Value::Num(f64::INFINITY), Value::Num(0.0)]];
        let err = GridIndex::try_new(&data, TupleDistance::numeric(2), 1.0)
            .err()
            .unwrap();
        assert_eq!(err, NonNumericCell { row: 0, attr: 0 });
    }

    #[test]
    #[should_panic(expected = "requires finite numeric data")]
    fn new_panics_on_null_row() {
        let data = vec![vec![Value::Null, Value::Num(0.0)]];
        GridIndex::new(&data, TupleDistance::numeric(2), 1.0);
    }

    #[test]
    fn null_query_falls_back_to_full_scan() {
        let data = grid_points(120);
        let dist = TupleDistance::numeric(2);
        let grid = GridIndex::new(&data, dist.clone(), 1.0);
        let brute = BruteForceIndex::new(&data, dist);
        let query = vec![Value::Null, Value::Num(1.0)];
        for eps in [0.5, 3.0] {
            let mut a = grid.range(&query, eps);
            let mut b = brute.range(&query, eps);
            sort_hits(&mut a);
            sort_hits(&mut b);
            assert_eq!(a, b, "eps={eps}");
        }
        for k in [1, 7] {
            assert_eq!(grid.knn(&query, k), brute.knn(&query, k), "k={k}");
        }
    }

    #[test]
    fn occupied_cells_counted() {
        let data = rows(&[[0.1, 0.1], [0.2, 0.2], [5.0, 5.0]]);
        let grid = GridIndex::new(&data, TupleDistance::numeric(2), 1.0);
        assert_eq!(grid.occupied_cells(), 2);
        assert_eq!(grid.len(), 3);
    }

    #[test]
    fn negative_coordinates() {
        let data = rows(&[[-1.5, -1.5], [-1.4, -1.4], [1.0, 1.0]]);
        let dist = TupleDistance::numeric(2);
        let grid = GridIndex::new(&data, dist.clone(), 1.0);
        let brute = BruteForceIndex::new(&data, dist);
        let mut a = grid.range(&q(-1.45, -1.45), 0.2);
        let mut b = brute.range(&q(-1.45, -1.45), 0.2);
        sort_hits(&mut a);
        sort_hits(&mut b);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cell width must be positive")]
    fn zero_cell_width_panics() {
        let data = rows(&[[0.0, 0.0]]);
        GridIndex::new(&data, TupleDistance::numeric(2), 0.0);
    }
}
