//! Property tests: every index backend agrees with the brute-force
//! reference on range, count, satisfies, knn and kth-distance queries.

use disc_distance::{Metric, Norm, TupleDistance, Value};
use disc_index::{BruteForceIndex, GridIndex, NeighborIndex, SortedColumn, VpTree};
use proptest::prelude::*;

fn to_rows(points: Vec<Vec<f64>>) -> Vec<Vec<Value>> {
    points
        .into_iter()
        .map(|p| p.into_iter().map(Value::Num).collect())
        .collect()
}

/// The four norms exercised by the cross-norm agreement tests; proptest
/// draws an index into this table.
const NORMS: [Norm; 4] = [Norm::L1, Norm::L2, Norm::LInf, Norm::Lp(3.0)];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Range results (sets of ids with distances) are identical across
    /// backends.
    #[test]
    fn range_agreement(
        points in prop::collection::vec(prop::collection::vec(-50.0f64..50.0, 3), 1..60),
        q in prop::collection::vec(-50.0f64..50.0, 3),
        eps in 0.1f64..40.0,
        cell in 0.5f64..10.0,
    ) {
        let rows = to_rows(points);
        let query: Vec<Value> = q.into_iter().map(Value::Num).collect();
        let dist = TupleDistance::numeric(3);
        let brute = BruteForceIndex::new(&rows, dist.clone());
        let grid = GridIndex::new(&rows, dist.clone(), cell);
        let tree = VpTree::new(&rows, dist);
        let canon = |mut v: Vec<(u32, f64)>| {
            v.sort_by_key(|a| a.0);
            v.into_iter().map(|(i, d)| (i, (d * 1e9).round())).collect::<Vec<_>>()
        };
        let want = canon(brute.range(&query, eps));
        prop_assert_eq!(canon(grid.range(&query, eps)), want.clone(), "grid");
        prop_assert_eq!(canon(tree.range(&query, eps)), want, "vptree");
    }

    /// knn distances agree across backends for every k.
    #[test]
    fn knn_agreement(
        points in prop::collection::vec(prop::collection::vec(-20.0f64..20.0, 2), 1..40),
        q in prop::collection::vec(-20.0f64..20.0, 2),
        k in 1usize..12,
    ) {
        let rows = to_rows(points);
        let query: Vec<Value> = q.into_iter().map(Value::Num).collect();
        let dist = TupleDistance::numeric(2);
        let brute = BruteForceIndex::new(&rows, dist.clone());
        let grid = GridIndex::new(&rows, dist.clone(), 1.0);
        let tree = VpTree::new(&rows, dist);
        let want: Vec<f64> = brute.knn(&query, k).into_iter().map(|(_, d)| d).collect();
        let got_grid: Vec<f64> = grid.knn(&query, k).into_iter().map(|(_, d)| d).collect();
        let got_tree: Vec<f64> = tree.knn(&query, k).into_iter().map(|(_, d)| d).collect();
        prop_assert_eq!(want.len(), got_grid.len());
        prop_assert_eq!(want.len(), got_tree.len());
        for i in 0..want.len() {
            prop_assert!((want[i] - got_grid[i]).abs() < 1e-9, "grid k={i}");
            prop_assert!((want[i] - got_tree[i]).abs() < 1e-9, "tree k={i}");
        }
        // knn is sorted ascending.
        for w in want.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
        // kth_distance consistency.
        if want.len() == k {
            prop_assert!((brute.kth_distance(&query, k).unwrap() - want[k - 1]).abs() < 1e-12);
        } else {
            prop_assert!(brute.kth_distance(&query, k).is_none());
        }
    }

    /// `satisfies` equals `count_within >= eta` on every backend.
    #[test]
    fn satisfies_agreement(
        points in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 2), 1..40),
        q in prop::collection::vec(-10.0f64..10.0, 2),
        eps in 0.5f64..10.0,
        eta in 0usize..10,
    ) {
        let rows = to_rows(points);
        let query: Vec<Value> = q.into_iter().map(Value::Num).collect();
        let dist = TupleDistance::numeric(2);
        let brute = BruteForceIndex::new(&rows, dist.clone());
        let tree = VpTree::new(&rows, dist);
        let want = brute.count_within(&query, eps) >= eta;
        prop_assert_eq!(brute.satisfies(&query, eps, eta), want);
        prop_assert_eq!(tree.satisfies(&query, eps, eta), want);
    }

    /// Range results agree between grid and brute force under every norm,
    /// including queries far outside the indexed bounding box. Before the
    /// norm-aware cell-span diameter this failed for L1 / Lp(3): the grid's
    /// k-NN exhaustion radius assumed L2 and stopped expanding too early.
    #[test]
    fn grid_range_agreement_all_norms(
        points in prop::collection::vec(prop::collection::vec(-50.0f64..50.0, 3), 1..50),
        q in prop::collection::vec(-500.0f64..500.0, 3),
        eps in 0.1f64..600.0,
        cell in 0.5f64..10.0,
        norm_idx in 0usize..NORMS.len(),
    ) {
        let rows = to_rows(points);
        let query: Vec<Value> = q.into_iter().map(Value::Num).collect();
        let dist = TupleDistance::new(vec![Metric::Absolute; 3], NORMS[norm_idx]);
        let brute = BruteForceIndex::new(&rows, dist.clone());
        let grid = GridIndex::new(&rows, dist, cell);
        let canon = |mut v: Vec<(u32, f64)>| {
            v.sort_by_key(|a| a.0);
            v.into_iter().map(|(i, d)| (i, (d * 1e9).round())).collect::<Vec<_>>()
        };
        prop_assert_eq!(canon(grid.range(&query, eps)), canon(brute.range(&query, eps)));
    }

    /// knn results agree between grid and brute force under every norm,
    /// including queries far outside the indexed bounding box (the grid
    /// falls back to an expanding radius search there, whose termination
    /// bound depends on a norm-correct cell-span diameter).
    #[test]
    fn grid_knn_agreement_all_norms(
        near in prop::collection::vec(prop::collection::vec(-5.0f64..5.0, 3), 1..6),
        far in prop::collection::vec(prop::collection::vec(100.0f64..300.0, 3), 1..6),
        q in prop::collection::vec(-300.0f64..0.0, 3),
        k in 1usize..10,
        cell in 0.5f64..5.0,
        norm_idx in 0usize..NORMS.len(),
    ) {
        // Two sparse clusters with a wide gap: the geometry where an
        // underestimated exhaustion radius stops the expanding search
        // after the near cluster and silently drops the far neighbors.
        let rows = to_rows(near.into_iter().chain(far).collect());
        let query: Vec<Value> = q.into_iter().map(Value::Num).collect();
        let dist = TupleDistance::new(vec![Metric::Absolute; 3], NORMS[norm_idx]);
        let brute = BruteForceIndex::new(&rows, dist.clone());
        let grid = GridIndex::new(&rows, dist, cell);
        let want: Vec<f64> = brute.knn(&query, k).into_iter().map(|(_, d)| d).collect();
        let got: Vec<f64> = grid.knn(&query, k).into_iter().map(|(_, d)| d).collect();
        prop_assert_eq!(want.len(), got.len(), "grid dropped neighbors");
        for i in 0..want.len() {
            prop_assert!((want[i] - got[i]).abs() < 1e-9, "k={i}");
        }
    }

    /// Sorted-column balls agree with a scan and distinct values are the
    /// sorted deduped column.
    #[test]
    fn sorted_column_agreement(
        vals in prop::collection::vec(-100.0f64..100.0, 1..50),
        q in -100.0f64..100.0,
        eps in 0.0f64..50.0,
    ) {
        let rows: Vec<Vec<Value>> = vals.iter().map(|&x| vec![Value::Num(x)]).collect();
        let col = SortedColumn::new(&rows, 0).unwrap();
        let mut got: Vec<u32> = col.ball(q, eps).collect();
        got.sort_unstable();
        let mut want: Vec<u32> = vals
            .iter()
            .enumerate()
            .filter(|(_, &x)| (x - q).abs() <= eps)
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        prop_assert_eq!(col.ball_size(q, eps), col.ball(q, eps).count());
        let distinct = col.distinct_values();
        for w in distinct.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }
}
