//! Cross-backend differential battery for the packed numeric kernels.
//!
//! Every backend (brute, grid, VP-tree, and `DynamicIndex` fed by random
//! ingest splits) must agree on range and k-NN results under
//! L1/L2/L∞/Lp(3), with the packed kernels both on and off. The oracle
//! is the brute-force scan with packing disabled — the pure `Value`
//! path — so any divergence pins the kernel itself, not two backends
//! drifting together. The determinism contract: distances are
//! bitwise-equal for L1/L∞ and within 1 ulp for L2/Lp (in practice the
//! kernels mirror the `Value` path bit for bit; the looser bound is the
//! public contract).

use disc_distance::{Metric, Norm, TupleDistance, Value};
use disc_index::{
    BruteForceIndex, DynamicIndex, DynamicNeighborIndex, GridIndex, NeighborIndex, VpTree,
};
use proptest::prelude::*;

const NORMS: [Norm; 4] = [Norm::L1, Norm::L2, Norm::LInf, Norm::Lp(3.0)];

fn to_rows(flat: &[f64], m: usize) -> Vec<Vec<Value>> {
    flat.chunks_exact(m)
        .map(|chunk| chunk.iter().map(|&x| Value::Num(x)).collect())
        .collect()
}

fn with_norm(m: usize, norm: Norm) -> TupleDistance {
    TupleDistance::new(vec![Metric::Absolute; m], norm)
}

/// ≤ 1 ulp apart (valid for non-negative finite doubles).
fn within_one_ulp(a: f64, b: f64) -> bool {
    a.to_bits().abs_diff(b.to_bits()) <= 1
}

/// Asserts `got` matches the oracle `want`: same ids in the same order,
/// distances bitwise-equal for L1/L∞ and ≤ 1 ulp for L2/Lp. Inputs must
/// already be in a canonical order.
fn assert_hits_match(norm: Norm, got: &[(u32, f64)], want: &[(u32, f64)], label: &str) {
    assert_eq!(
        got.iter().map(|h| h.0).collect::<Vec<_>>(),
        want.iter().map(|h| h.0).collect::<Vec<_>>(),
        "{label} {norm:?}: id sets differ"
    );
    for (g, w) in got.iter().zip(want) {
        match norm {
            Norm::L1 | Norm::LInf => assert_eq!(
                g.1.to_bits(),
                w.1.to_bits(),
                "{label} {norm:?} id {}: {} vs {} not bitwise-equal",
                g.0,
                g.1,
                w.1
            ),
            _ => assert!(
                within_one_ulp(g.1, w.1),
                "{label} {norm:?} id {}: {} vs {} differ by > 1 ulp",
                g.0,
                g.1,
                w.1
            ),
        }
    }
}

fn sort_by_id(mut hits: Vec<(u32, f64)>) -> Vec<(u32, f64)> {
    hits.sort_by_key(|h| h.0);
    hits
}

/// A `DynamicIndex` grown through random ingest splits: the rows arrive
/// in batches whose boundaries are derived from `seed`, exercising the
/// packed tail appends and any backend upgrades along the way.
fn dynamic_via_ingest_splits(
    rows: &[Vec<Value>],
    dist: &TupleDistance,
    eps_hint: f64,
    seed: u64,
) -> DynamicIndex {
    let mut idx = DynamicIndex::new(dist.clone(), eps_hint);
    let mut state = seed | 1;
    let mut start = 0;
    while start < rows.len() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let batch = 1 + (state >> 33) as usize % 7;
        let end = (start + batch).min(rows.len());
        idx.extend(rows[start..end].to_vec());
        start = end;
    }
    idx
}

/// Runs `check` against every backend × packed-on/off combination.
fn for_each_backend(
    rows: &[Vec<Value>],
    m: usize,
    norm: Norm,
    cell: f64,
    seed: u64,
    mut check: impl FnMut(&str, &dyn NeighborIndex),
) {
    let on = with_norm(m, norm);
    let off = on.clone().with_packed(false);
    for (mode, dist) in [("packed", &on), ("value", &off)] {
        let brute = BruteForceIndex::new(rows, dist.clone());
        check(&format!("brute/{mode}"), &brute);
        let grid = GridIndex::new(rows, dist.clone(), cell);
        check(&format!("grid/{mode}"), &grid);
        let tree = VpTree::new(rows, dist.clone());
        check(&format!("vptree/{mode}"), &tree);
        let dynamic = dynamic_via_ingest_splits(rows, dist, cell, seed);
        check(&format!("dynamic/{mode}"), &dynamic);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Range queries: all backends, packed on and off, reproduce the
    /// `Value`-path brute-force oracle under every norm.
    #[test]
    fn range_differential(
        flat in prop::collection::vec(-40.0f64..40.0, 1..330),
        qf in prop::collection::vec(-40.0f64..40.0, 4),
        m in 1usize..5,
        eps in 0.05f64..30.0,
        cell in 0.3f64..5.0,
        seed in 0u64..u64::MAX,
    ) {
        prop_assume!(flat.len() >= m);
        let rows = to_rows(&flat, m);
        let query: Vec<Value> = qf[..m].iter().map(|&x| Value::Num(x)).collect();
        for norm in NORMS {
            let oracle = BruteForceIndex::new(&rows, with_norm(m, norm).with_packed(false));
            let want = sort_by_id(oracle.range(&query, eps));
            for_each_backend(&rows, m, norm, cell, seed, |label, idx| {
                let got = sort_by_id(idx.range(&query, eps));
                assert_hits_match(norm, &got, &want, label);
            });
        }
    }

    /// k-NN queries: same agreement, including the k-th distance.
    #[test]
    fn knn_differential(
        flat in prop::collection::vec(-40.0f64..40.0, 1..220),
        qf in prop::collection::vec(-40.0f64..40.0, 4),
        m in 1usize..5,
        k in 1usize..12,
        cell in 0.3f64..5.0,
        seed in 0u64..u64::MAX,
    ) {
        prop_assume!(flat.len() >= m);
        let rows = to_rows(&flat, m);
        let query: Vec<Value> = qf[..m].iter().map(|&x| Value::Num(x)).collect();
        for norm in NORMS {
            let oracle = BruteForceIndex::new(&rows, with_norm(m, norm).with_packed(false));
            let want = oracle.knn(&query, k);
            for_each_backend(&rows, m, norm, cell, seed, |label, idx| {
                let got = idx.knn(&query, k);
                assert_hits_match(norm, &got, &want, label);
                assert_eq!(
                    idx.kth_distance(&query, k).is_some(),
                    want.len() >= k,
                    "{label} {norm:?}"
                );
            });
        }
    }

    /// Mixed-validity data: rows containing nulls or non-finite numbers
    /// fall back per row, and still agree with the `Value` oracle on the
    /// backends that accept such rows (brute, VP-tree, dynamic).
    #[test]
    fn range_differential_with_invalid_rows(
        flat in prop::collection::vec(-40.0f64..40.0, 2..200),
        qf in prop::collection::vec(-40.0f64..40.0, 2),
        poison in prop::collection::vec(0usize..100, 1..8),
        eps in 0.05f64..30.0,
        seed in 0u64..u64::MAX,
    ) {
        let m = 2usize;
        let mut rows = to_rows(&flat, m);
        let n = rows.len();
        for (j, p) in poison.iter().enumerate() {
            let row = &mut rows[p % n];
            row[j % m] = if p % 3 == 0 {
                Value::Null
            } else if p % 3 == 1 {
                Value::Num(f64::NAN)
            } else {
                Value::Num(f64::INFINITY)
            };
        }
        let query: Vec<Value> = qf.iter().map(|&x| Value::Num(x)).collect();
        for norm in NORMS {
            let on = with_norm(m, norm);
            let off = on.clone().with_packed(false);
            let oracle = BruteForceIndex::new(&rows, off.clone());
            let want = sort_by_id(oracle.range(&query, eps));
            let brute = BruteForceIndex::new(&rows, on.clone());
            assert_hits_match(norm, &sort_by_id(brute.range(&query, eps)), &want, "brute/packed");
            let tree_on = VpTree::new(&rows, on.clone());
            let tree_off = VpTree::new(&rows, off.clone());
            assert_hits_match(norm, &sort_by_id(tree_on.range(&query, eps)), &sort_by_id(tree_off.range(&query, eps)), "vptree/packed-vs-value");
            let dyn_on = dynamic_via_ingest_splits(&rows, &on, 1.0, seed);
            let dyn_off = dynamic_via_ingest_splits(&rows, &off, 1.0, seed);
            assert_hits_match(norm, &sort_by_id(dyn_on.range(&query, eps)), &sort_by_id(dyn_off.range(&query, eps)), "dynamic/packed-vs-value");
        }
    }
}

/// Above `BRUTE_MAX` (512) and at low arity the dynamic index runs its
/// grid backend; the proptest sizes stay below that, so pin it here.
#[test]
fn dynamic_grid_backend_differential() {
    let mut state = 42u64;
    let mut flat = Vec::new();
    for _ in 0..700 * 3 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        flat.push(((state >> 33) % 2000) as f64 / 25.0);
    }
    let rows = to_rows(&flat, 3);
    let query = vec![Value::Num(40.0), Value::Num(10.0), Value::Num(70.0)];
    for norm in NORMS {
        let on = with_norm(3, norm);
        let idx = dynamic_via_ingest_splits(&rows, &on, 1.0, 7);
        assert_eq!(idx.backend_name(), "grid", "{norm:?}");
        let oracle = BruteForceIndex::new(&rows, on.clone().with_packed(false));
        for eps in [0.5, 4.0, 25.0] {
            let want = sort_by_id(oracle.range(&query, eps));
            let got = sort_by_id(idx.range(&query, eps));
            assert_hits_match(norm, &got, &want, "dynamic-grid");
        }
        for k in [1, 9, 40] {
            assert_hits_match(
                norm,
                &idx.knn(&query, k),
                &oracle.knn(&query, k),
                "dynamic-grid-knn",
            );
        }
    }
}

/// At arity 5 the dynamic index upgrades to its VP backend; random
/// splits leave rows in the scanned tail buffer.
#[test]
fn dynamic_vp_backend_differential() {
    let mut state = 99u64;
    let mut flat = Vec::new();
    for _ in 0..600 * 5 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        flat.push(((state >> 33) % 2000) as f64 / 25.0);
    }
    let rows = to_rows(&flat, 5);
    let query = vec![Value::Num(40.0); 5];
    for norm in NORMS {
        let on = with_norm(5, norm);
        let idx = dynamic_via_ingest_splits(&rows, &on, 1.0, 3);
        assert_eq!(idx.backend_name(), "vp", "{norm:?}");
        let oracle = BruteForceIndex::new(&rows, on.clone().with_packed(false));
        for eps in [1.0, 10.0, 40.0] {
            let want = sort_by_id(oracle.range(&query, eps));
            let got = sort_by_id(idx.range(&query, eps));
            assert_hits_match(norm, &got, &want, "dynamic-vp");
        }
        for k in [1, 9, 40] {
            assert_hits_match(
                norm,
                &idx.knn(&query, k),
                &oracle.knn(&query, k),
                "dynamic-vp-knn",
            );
        }
    }
}
