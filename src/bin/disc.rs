//! `disc` — command-line interface to the outlier-saving toolkit.
//!
//! ```text
//! disc generate --out data.csv [--n 1000] [--m 4] [--classes 3]
//!               [--dirty 50] [--natural 10] [--seed 42]
//! disc params   --data data.csv [--sample 1.0]
//! disc detect   --data data.csv [--eps E --eta H]
//! disc repair   --data data.csv --out repaired.csv [--eps E --eta H]
//!               [--kappa K] [--method disc|dorc|eracer|holoclean|holistic]
//! disc cluster  --data data.csv [--eps E --eta H] [--algo dbscan|kmeans|
//!               kmeans--|cckm|srem|kmc|optics] [--k K] [--out labels.csv]
//! disc stream   --data data.csv [--out repaired.csv] [--eps E --eta H]
//!               [--kappa K] [--batch B] [--shards S] [--wal DIR]
//!               [--snapshot-every N]
//! disc recover  --wal DIR [--out repaired.csv]
//! disc serve    [--addr HOST:PORT] [--arity M] [--eps E --eta H]
//!               [--kappa K] [--shards S] [--wal DIR] [--max-queue N]
//!               [--snapshot-every N] [--replicate-from HOST:PORT]
//! disc repl-status --addr HOST:PORT
//! disc evaluate --labels predicted.csv --truth truth.csv
//! ```
//!
//! `stream` replays the CSV through the incremental engine in
//! micro-batches of `--batch` rows (default 64), printing per-batch save
//! activity; the final dataset is identical to one batch `repair` run
//! over the whole file. With `--wal DIR` the engine is durable: every
//! batch is appended to a write-ahead log (and fsynced) before it is
//! applied, with a checkpoint snapshot every `--snapshot-every N`
//! ingests (default: only a final checkpoint). `recover` reopens such a
//! store after a crash, reports what was replayed (and any torn log
//! tail that was truncated), and optionally exports the recovered
//! dataset.
//!
//! `--shards S` (on `stream` and `serve`) partitions the engine's rows
//! across `S` independently indexed shards whose queries fan out on
//! worker threads; `0` means one shard per core. Sharding is a pure
//! execution knob — results are bit-identical for every shard count —
//! and a durable store remembers its count, so a reopen without the
//! flag keeps the stored layout while a reopen with it re-partitions.
//!
//! `serve` exposes one engine to many clients over TCP, speaking
//! newline-delimited JSON (see `disc_serve::protocol` for the wire
//! format). Writes flow through a bounded single-writer queue
//! (`--max-queue`, default 64); a full queue answers `overloaded`.
//! With `--wal DIR` the served engine is durable: an existing store is
//! reopened (recovering as `recover` would), a missing one is created
//! with `--eps/--eta` (required then, as there is no data to determine
//! them from). The first stdout line is `listening on HOST:PORT` — with
//! `--addr` port 0 this is how callers learn the ephemeral port.
//! SIGINT/SIGTERM begin a graceful shutdown: admission closes, every
//! admitted batch drains, and a durable store is checkpointed and its
//! lock released, so no acknowledged ingest is ever lost.
//!
//! `serve --replicate-from HOST:PORT` runs a **read replica** instead:
//! `--wal DIR` (required) is the replica's own durable store, which
//! bootstraps from a leader snapshot and then tails the leader's WAL
//! over its serving socket, reconnecting with exponential backoff when
//! the link drops. Schema and saver configuration travel inside the
//! replicated snapshot, so `--eps/--eta/--arity/--kappa` must not be
//! given. The replica serves every read verb at the replicated state's
//! generation; writes answer a typed `not_leader` error naming the
//! leader. `repl-status` asks any server (`--addr`) for its replication
//! role and, on a follower, connection state, generations, and lag.
//!
//! Labels for `evaluate` come from a single-column CSV aligned with the
//! data rows. When `--eps/--eta` are omitted, the Poisson procedure of the
//! paper (Section 2.1.2) determines them from the data.
//!
//! Every `--data` loader accepts `--non-finite reject|null|drop` for
//! `nan`/`inf` tokens in numeric columns: `reject` (default) fails the
//! load naming the offending line and column, `null` demotes them to
//! missing values, `drop` discards the affected rows.
//!
//! Every subcommand accepts `--stats <path.json>`: after the command
//! completes, the process-wide observability counters (index queries per
//! backend, search nodes, bound prunes, budget cancellations, …) are
//! written to the path as a stable `disc-stats/1` JSON document.
//!
//! Exit codes are typed: `0` success, `2` unparseable flags or usage
//! errors, `3` invalid input data (CSV parse failures, non-finite
//! values, label mismatches), `4` filesystem or persistence failures,
//! `5` the run completed and wrote its outputs but degraded (budget
//! expiry or isolated panics left outliers unsaved). Errors go to
//! stderr.

use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

use disc::cleaning::{DiscRepairer, Dorc, Eracer, Holistic, HoloClean, Repairer};
use disc::clustering::Optics;
use disc::core::ParamConfig;
use disc::data::{csv, ClusterSpec, ErrorInjector, NonFinitePolicy};
use disc::persist::{DurableEngine, StoreOptions};
use disc::prelude::*;
use disc_distance::Norm;

/// A CLI failure, carrying its exit code class (see the module docs).
enum CliError {
    /// Unparseable flags, unknown subcommands, usage errors — exit 2.
    Parse(String),
    /// Inputs that were read but are invalid — exit 3.
    Validation(String),
    /// Filesystem / persistence failures — exit 4.
    Io(String),
    /// The run completed (outputs written) but degraded — exit 5.
    Degraded(String),
}

impl CliError {
    fn exit_code(&self) -> ExitCode {
        match self {
            CliError::Parse(_) => ExitCode::from(2),
            CliError::Validation(_) => ExitCode::from(3),
            CliError::Io(_) => ExitCode::from(4),
            CliError::Degraded(_) => ExitCode::from(5),
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Parse(m)
            | CliError::Validation(m)
            | CliError::Io(m)
            | CliError::Degraded(m) => m,
        }
    }
}

/// Classifies a persistence-layer error: engine rejections are bad input,
/// everything else (IO, corruption, store state) is an IO failure.
fn persist_err(e: disc::persist::Error) -> CliError {
    match e {
        disc::persist::Error::Engine(e) => CliError::Validation(e.to_string()),
        other => CliError::Io(other.to_string()),
    }
}

struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    fn parse() -> Args {
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        let mut it = std::env::args().skip(1).peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it.next().unwrap_or_default();
                flags.insert(name.to_string(), value);
            } else {
                positional.push(a);
            }
        }
        Args { positional, flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| CliError::Parse(format!("--{name}: cannot parse {s:?}"))),
        }
    }

    fn required(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| CliError::Parse(format!("--{name} is required")))
    }
}

/// Loads a CSV under the `--non-finite` policy: `reject` (default) makes
/// `nan`/`inf` tokens in numeric columns a load error; `null` demotes them
/// to missing values; `drop` discards the whole row.
fn load(path: &str, args: &Args) -> Result<Dataset, CliError> {
    let policy = match args.get("non-finite") {
        None => NonFinitePolicy::default(),
        Some(s) => NonFinitePolicy::parse(s).ok_or_else(|| {
            CliError::Parse(format!(
                "--non-finite: expected reject|null|drop, got {s:?}"
            ))
        })?,
    };
    csv::read_file_with(path, policy).map_err(|e| {
        // The loader wraps parse/validation problems as `InvalidData`;
        // anything else is a real filesystem failure.
        let message = format!("reading {path}: {e}");
        if e.kind() == std::io::ErrorKind::InvalidData {
            CliError::Validation(message)
        } else {
            CliError::Io(message)
        }
    })
}

fn constraints_for(ds: &Dataset, args: &Args) -> Result<DistanceConstraints, CliError> {
    let dist = ds.schema().tuple_distance(Norm::L2);
    match (args.get("eps"), args.get("eta")) {
        (Some(e), Some(h)) => {
            let eps: f64 = e
                .parse()
                .map_err(|_| CliError::Parse("--eps: not a number".into()))?;
            let eta: usize = h
                .parse()
                .map_err(|_| CliError::Parse("--eta: not an integer".into()))?;
            Ok(DistanceConstraints::new(eps, eta))
        }
        (None, None) => {
            let sample: f64 = args.num("sample", 1.0f64.min(2000.0 / ds.len().max(1) as f64))?;
            let cfg = ParamConfig {
                sample_rate: sample,
                ..Default::default()
            };
            let choice = determine_parameters(ds.rows(), &dist, &cfg);
            eprintln!(
                "determined ε = {:.4}, η = {} (λε = {:.2}, violation rate {:.1}%)",
                choice.eps,
                choice.eta,
                choice.lambda,
                choice.outlier_rate * 100.0
            );
            Ok(DistanceConstraints::new(
                choice.eps.max(1e-9),
                choice.eta.max(1),
            ))
        }
        _ => Err(CliError::Parse(
            "--eps and --eta must be given together".into(),
        )),
    }
}

fn cmd_generate(args: &Args) -> Result<(), CliError> {
    let out = args.required("out")?;
    let n: usize = args.num("n", 1000)?;
    let m: usize = args.num("m", 4)?;
    let classes: usize = args.num("classes", 3)?;
    let dirty: usize = args.num("dirty", n / 20)?;
    let natural: usize = args.num("natural", n / 100)?;
    let seed: u64 = args.num("seed", 42)?;
    let mut ds = ClusterSpec::new(n, m, classes, seed).generate();
    let log = ErrorInjector::new(dirty.min(n), natural, seed ^ 0xC11).inject(&mut ds);
    csv::write_file(&ds, out).map_err(|e| CliError::Io(e.to_string()))?;
    // Ground-truth labels go to <out>.labels.csv for `evaluate`.
    let labels_path = format!("{out}.labels.csv");
    let labels = ds.labels().expect("generated data is labeled");
    let mut text = String::from("label\n");
    for l in labels {
        text.push_str(&format!("{l}\n"));
    }
    std::fs::write(&labels_path, text).map_err(|e| CliError::Io(e.to_string()))?;
    println!(
        "wrote {} rows × {} attrs to {out} ({} dirty, {} natural outliers); labels in {labels_path}",
        ds.len(),
        ds.arity(),
        log.errors.len(),
        log.natural_rows.len()
    );
    Ok(())
}

fn cmd_params(args: &Args) -> Result<(), CliError> {
    let ds = load(args.required("data")?, args)?;
    let dist = ds.schema().tuple_distance(Norm::L2);
    let sample: f64 = args.num("sample", 1.0f64.min(2000.0 / ds.len().max(1) as f64))?;
    let cfg = ParamConfig {
        sample_rate: sample,
        ..Default::default()
    };
    let choice = determine_parameters(ds.rows(), &dist, &cfg);
    println!(
        "ε = {:.6}\nη = {}\nλε = {:.3}\nviolation rate = {:.2}%\nelapsed = {:.3}s",
        choice.eps,
        choice.eta,
        choice.lambda,
        choice.outlier_rate * 100.0,
        choice.elapsed.as_secs_f64()
    );
    Ok(())
}

fn cmd_detect(args: &Args) -> Result<(), CliError> {
    let ds = load(args.required("data")?, args)?;
    let dist = ds.schema().tuple_distance(Norm::L2);
    let c = constraints_for(&ds, args)?;
    let split = disc::core::detect_outliers(ds.rows(), &dist, c);
    println!(
        "{} of {} tuples violate (ε = {:.4}, η = {})",
        split.outliers.len(),
        ds.len(),
        c.eps,
        c.eta
    );
    for &row in &split.outliers {
        println!("{row}\t{} ε-neighbors", split.counts[row]);
    }
    Ok(())
}

fn cmd_repair(args: &Args) -> Result<(), CliError> {
    let mut ds = load(args.required("data")?, args)?;
    let out = args.required("out")?;
    let dist = ds.schema().tuple_distance(Norm::L2);
    let c = constraints_for(&ds, args)?;
    let kappa: usize = args.num("kappa", 2)?;
    let method = args.get("method").unwrap_or("disc");
    let repairer: Box<dyn Repairer> = match method {
        "disc" => Box::new(DiscRepairer(
            SaverConfig::new(c, dist.clone())
                .kappa(kappa.max(1))
                .build_approx()
                .map_err(|e| CliError::Validation(e.to_string()))?,
        )),
        "dorc" => Box::new(Dorc::new(c, dist.clone())),
        "eracer" => Box::new(Eracer::new()),
        "holoclean" => Box::new(HoloClean::new()),
        "holistic" => Box::new(Holistic::new()),
        other => return Err(CliError::Parse(format!("unknown --method {other:?}"))),
    };
    let report = repairer.repair(&mut ds);
    csv::write_file(&ds, out).map_err(|e| CliError::Io(e.to_string()))?;
    println!(
        "{}: modified {} rows / {} cells; wrote {out}",
        repairer.name(),
        report.rows_modified(),
        report.cells_modified()
    );
    for (row, attrs) in &report.rows {
        println!("{row}\tattrs {:?}", attrs.iter().collect::<Vec<_>>());
    }
    Ok(())
}

fn cmd_cluster(args: &Args) -> Result<(), CliError> {
    let ds = load(args.required("data")?, args)?;
    let dist = ds.schema().tuple_distance(Norm::L2);
    let c = constraints_for(&ds, args)?;
    let k: usize = args.num("k", 3)?;
    let l: usize = args.num("l", ds.len() / 20)?;
    let seed: u64 = args.num("seed", 42)?;
    let algo = args.get("algo").unwrap_or("dbscan");
    let algorithm: Box<dyn ClusteringAlgorithm> = match algo {
        "dbscan" => Box::new(Dbscan::new(c.eps, c.eta)),
        "optics" => Box::new(Optics::new(c.eps, c.eta)),
        "kmeans" => Box::new(KMeans::new(k, seed)),
        "kmeans--" => Box::new(KMeansMinus::new(k, l, seed)),
        "cckm" => Box::new(Cckm::new(k, l, seed)),
        "srem" => Box::new(Srem::new(k, seed)),
        "kmc" => Box::new(Kmc::new(k, seed)),
        other => return Err(CliError::Parse(format!("unknown --algo {other:?}"))),
    };
    let labels = algorithm.cluster(ds.rows(), &dist);
    let clusters = {
        let mut ids: Vec<u32> = labels.iter().copied().filter(|&l| l != u32::MAX).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    };
    let noise = labels.iter().filter(|&&l| l == u32::MAX).count();
    println!(
        "{}: {clusters} clusters, {noise} noise points",
        algorithm.name()
    );
    if let Some(out) = args.get("out") {
        let mut text = String::from("label\n");
        for l in &labels {
            text.push_str(&format!("{l}\n"));
        }
        std::fs::write(out, text).map_err(|e| CliError::Io(e.to_string()))?;
        println!("labels written to {out}");
    }
    Ok(())
}

fn read_labels(path: &str) -> Result<Vec<u32>, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("reading {path}: {e}")))?;
    text.lines()
        .skip(1)
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            l.trim()
                .parse()
                .map_err(|_| CliError::Validation(format!("bad label {l:?}")))
        })
        .collect()
}

/// The optional `--shards` override: `Some(0)` requests auto (one shard
/// per core), `None` leaves the engine/store default in charge.
fn shards_flag(args: &Args) -> Result<Option<usize>, CliError> {
    match args.get("shards") {
        None => Ok(None),
        Some(s) => s
            .parse()
            .map(Some)
            .map_err(|_| CliError::Parse(format!("--shards: cannot parse {s:?}"))),
    }
}

/// The full engine knob set for a streaming/serving command; persisted
/// verbatim (via [`EngineConfig::encode`]) in a durable store's config
/// blob so `recover` can rebuild the exact saver with no flags.
fn stream_engine_config(
    arity: usize,
    c: DistanceConstraints,
    kappa: usize,
    shards: Option<usize>,
) -> EngineConfig {
    let config = EngineConfig::new(arity, c.eps, c.eta).kappa(kappa.max(1));
    match shards {
        Some(s) => config.shards(s),
        None => config,
    }
}

/// Rebuilds the streaming saver from a store's schema + config blob.
fn stream_saver_from_config(
    schema: &Schema,
    config: &[u8],
) -> Result<Box<dyn Saver>, disc::core::Error> {
    EngineConfig::decode(config)?.build_saver_for(schema)
}

fn print_batch_report(i: usize, rows: usize, report: &SaveReport) {
    println!(
        "batch {i}: +{rows} rows, {} dirty, {} saved, {} natural{}",
        report.outliers.len(),
        report.saved.len(),
        report.unsaved.len(),
        if report.degraded { " (degraded)" } else { "" }
    );
}

fn cmd_stream(args: &Args) -> Result<(), CliError> {
    let ds = load(args.required("data")?, args)?;
    let c = constraints_for(&ds, args)?;
    let kappa: usize = args.num("kappa", 2)?;
    let shards = shards_flag(args)?;
    let batch: usize = args.num("batch", 64)?;
    if batch == 0 {
        return Err(CliError::Parse("--batch must be at least 1".into()));
    }
    let snapshot_every: u64 = args.num("snapshot-every", 0)?;
    if snapshot_every > 0 && args.get("wal").is_none() {
        return Err(CliError::Parse("--snapshot-every requires --wal".into()));
    }
    let config = stream_engine_config(ds.schema().arity(), c, kappa, shards);

    let mut degraded = false;
    let engine = match args.get("wal") {
        Some(dir) => {
            // Durable path: every batch is WAL-appended and fsynced
            // before it is applied; `disc recover --wal DIR` resumes
            // after a crash.
            let mut store = DurableEngine::create_with_config(
                Path::new(dir),
                ds.schema().clone(),
                &config,
                StoreOptions {
                    snapshot_every: (snapshot_every > 0).then_some(snapshot_every),
                    shards: None,
                },
            )
            .map_err(persist_err)?;
            for (i, chunk) in ds.rows().chunks(batch).enumerate() {
                let report = store.ingest(chunk.to_vec()).map_err(|e| match e {
                    disc::persist::Error::Engine(e) => {
                        CliError::Validation(format!("batch {i}: {e}"))
                    }
                    other => CliError::Io(format!("batch {i}: {other}")),
                })?;
                print_batch_report(i, chunk.len(), &report);
                degraded |= report.degraded;
            }
            store.checkpoint().map_err(persist_err)?;
            println!(
                "durable store in {dir}: generation {}, checkpointed",
                store.generation()
            );
            store.into_engine()
        }
        None => {
            let mut engine = config
                .build_engine(ds.schema().clone())
                .map_err(|e| CliError::Validation(e.to_string()))?;
            for (i, chunk) in ds.rows().chunks(batch).enumerate() {
                let report = engine
                    .ingest(chunk.to_vec())
                    .map_err(|e| CliError::Validation(format!("batch {i}: {e}")))?;
                print_batch_report(i, chunk.len(), &report);
                degraded |= report.degraded;
            }
            engine
        }
    };
    let outliers = engine.outliers();
    let pending = engine.pending();
    println!(
        "stream done: {} rows across {} shards, {} current outliers, {} pending retries",
        engine.len(),
        engine.shards(),
        outliers.len(),
        pending.len()
    );
    if let Some(out) = args.get("out") {
        csv::write_file(engine.dataset(), out).map_err(|e| CliError::Io(e.to_string()))?;
        println!("wrote {out}");
    }
    if degraded || !pending.is_empty() {
        return Err(CliError::Degraded(format!(
            "stream completed degraded: {} pending retries (outputs were written)",
            pending.len()
        )));
    }
    Ok(())
}

fn cmd_recover(args: &Args) -> Result<(), CliError> {
    let dir = args.required("wal")?;
    let (store, report) = DurableEngine::open(
        Path::new(dir),
        stream_saver_from_config,
        StoreOptions::default(),
    )
    .map_err(persist_err)?;
    println!(
        "recovered {dir}: snapshot generation {}, {} WAL records ({} rows) replayed",
        report.snapshot_generation, report.replayed_records, report.replayed_rows
    );
    match report.torn_tail {
        Some(tear) => println!(
            "torn WAL tail truncated: {} incomplete bytes dropped at offset {}",
            tear.dropped_bytes, tear.valid_len
        ),
        None => println!("log was clean (no torn tail)"),
    }
    let engine = store.engine();
    println!(
        "engine at generation {}: {} rows, {} current outliers, {} pending retries",
        report.generation,
        engine.len(),
        engine.outliers().len(),
        engine.pending().len()
    );
    if let Some(out) = args.get("out") {
        csv::write_file(engine.dataset(), out).map_err(|e| CliError::Io(e.to_string()))?;
        println!("wrote {out}");
    }
    Ok(())
}

/// Set by the signal handler; polled by the server's accept loop.
static SERVE_SHUTDOWN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_shutdown_signal(_signum: i32) {
    // Only async-signal-safe work here: one atomic store.
    SERVE_SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// Routes SIGINT (ctrl-c) and SIGTERM into [`SERVE_SHUTDOWN`] via the
/// libc `signal` entry point, which the platform C runtime always
/// exports — no binding crate needed.
fn install_shutdown_signals() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_shutdown_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

/// `--eps/--eta` without a dataset to determine them from: both flags
/// are required.
fn explicit_constraints(args: &Args) -> Result<DistanceConstraints, CliError> {
    let eps: f64 = args
        .required("eps")?
        .parse()
        .map_err(|_| CliError::Parse("--eps: not a number".into()))?;
    let eta: usize = args
        .required("eta")?
        .parse()
        .map_err(|_| CliError::Parse("--eta: not an integer".into()))?;
    Ok(DistanceConstraints::new(eps, eta))
}

/// `serve --replicate-from`: bring up a catch-up read replica over the
/// replica's own durable store, serve reads from its replicated state,
/// and tail the leader until shutdown.
fn cmd_serve_replica(args: &Args, leader: &str) -> Result<(), CliError> {
    use disc::replicate::{Follower, FollowerError, FollowerOptions};
    use disc::serve::{Server, ServerConfig};

    for flag in ["eps", "eta", "arity", "kappa"] {
        if args.get(flag).is_some() {
            return Err(CliError::Parse(format!(
                "--{flag} conflicts with --replicate-from: a replica takes schema and \
                 saver configuration from the leader's snapshot"
            )));
        }
    }
    let dir = args.get("wal").ok_or_else(|| {
        CliError::Parse("--replicate-from requires --wal DIR (the replica's own store)".into())
    })?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:0").to_string();
    let max_queue: usize = args.num("max-queue", 64)?;
    if max_queue == 0 {
        return Err(CliError::Parse("--max-queue must be at least 1".into()));
    }
    let snapshot_every: u64 = args.num("snapshot-every", 0)?;
    let options = FollowerOptions {
        store: StoreOptions {
            snapshot_every: (snapshot_every > 0).then_some(snapshot_every),
            shards: shards_flag(args)?,
        },
        ..FollowerOptions::default()
    };

    install_shutdown_signals();
    // Bootstrap, waiting for the leader: a replica is routinely started
    // before (or restarted independently of) its leader.
    let follower = loop {
        match Follower::bootstrap(
            Path::new(dir),
            leader,
            Box::new(stream_saver_from_config),
            options,
        ) {
            Ok(f) => break f,
            Err(FollowerError::Link(m)) => {
                if SERVE_SHUTDOWN.load(std::sync::atomic::Ordering::SeqCst) {
                    return Ok(());
                }
                eprintln!("leader {leader} not reachable ({m}); retrying");
                std::thread::sleep(std::time::Duration::from_millis(500));
            }
            Err(FollowerError::Store(e)) => return Err(persist_err(e)),
            Err(e) => return Err(CliError::Io(e.to_string())),
        }
    };
    eprintln!(
        "replica store in {dir}: generation {}, replicating from {leader}",
        follower.generation()
    );

    let (handle, publisher) = Server::start_replica(
        follower.state(),
        leader.to_string(),
        ServerConfig {
            addr,
            max_queue,
            shutdown_flag: Some(&SERVE_SHUTDOWN),
            ..ServerConfig::default()
        },
    )
    .map_err(|e| CliError::Io(format!("binding listener: {e}")))?;
    println!("listening on {}", handle.addr());

    let daemon = std::thread::spawn(move || follower.run(&publisher));
    let report = handle.wait();
    let outcome = daemon
        .join()
        .map_err(|_| CliError::Io("replication thread panicked".into()))?;
    let rows = match report.state.query(Query::Len) {
        Response::Len(n) => n,
        _ => unreachable!("Len answers Len"),
    };
    println!(
        "shutdown complete: generation {}, {} rows",
        report.generation, rows
    );
    match outcome {
        Ok(()) => Ok(()),
        Err(FollowerError::Store(e)) => Err(persist_err(e)),
        Err(e) => Err(CliError::Io(e.to_string())),
    }
}

/// `repl-status`: one request against a running server, answer printed
/// verbatim (one machine-readable JSON line).
fn cmd_repl_status(args: &Args) -> Result<(), CliError> {
    use std::io::{BufRead, BufReader, Write};

    let addr = args.required("addr")?;
    let mut conn = std::net::TcpStream::connect(addr)
        .map_err(|e| CliError::Io(format!("connecting to {addr}: {e}")))?;
    conn.write_all(b"{\"op\":\"repl_status\"}\n")
        .map_err(|e| CliError::Io(format!("sending request: {e}")))?;
    let mut line = String::new();
    BufReader::new(conn)
        .read_line(&mut line)
        .map_err(|e| CliError::Io(format!("reading response: {e}")))?;
    if line.is_empty() {
        return Err(CliError::Io(format!("{addr} closed without answering")));
    }
    println!("{}", line.trim_end());
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), CliError> {
    use disc::serve::{EngineBackend, Server, ServerConfig};

    if let Some(leader) = args.get("replicate-from") {
        let leader = leader.to_string();
        return cmd_serve_replica(args, &leader);
    }

    let addr = args.get("addr").unwrap_or("127.0.0.1:0").to_string();
    let max_queue: usize = args.num("max-queue", 64)?;
    if max_queue == 0 {
        return Err(CliError::Parse("--max-queue must be at least 1".into()));
    }
    let kappa: usize = args.num("kappa", 2)?;
    let shards = shards_flag(args)?;
    let snapshot_every: u64 = args.num("snapshot-every", 0)?;
    if snapshot_every > 0 && args.get("wal").is_none() {
        return Err(CliError::Parse("--snapshot-every requires --wal".into()));
    }
    let options = StoreOptions {
        snapshot_every: (snapshot_every > 0).then_some(snapshot_every),
        shards,
    };

    let backend = match args.get("wal") {
        Some(dir) => {
            let path = Path::new(dir);
            // Reopen an existing store (recovering exactly as `recover`
            // would); only a missing one needs --eps/--eta to create.
            match DurableEngine::open(path, stream_saver_from_config, options) {
                Ok((store, report)) => {
                    eprintln!(
                        "reopened {dir}: generation {}, {} WAL records replayed",
                        report.generation, report.replayed_records
                    );
                    EngineBackend::Durable(store)
                }
                Err(disc::persist::Error::StoreMissing { .. }) => {
                    let c = explicit_constraints(args)?;
                    let arity: usize = args.num("arity", 2)?;
                    let config = stream_engine_config(arity, c, kappa, shards);
                    let store = DurableEngine::create_with_config(
                        path,
                        Schema::numeric(arity),
                        &config,
                        options,
                    )
                    .map_err(persist_err)?;
                    eprintln!(
                        "created durable store in {dir} ({} shards)",
                        store.engine().shards()
                    );
                    EngineBackend::Durable(store)
                }
                Err(e) => return Err(persist_err(e)),
            }
        }
        None => {
            let c = explicit_constraints(args)?;
            let arity: usize = args.num("arity", 2)?;
            let engine = stream_engine_config(arity, c, kappa, shards)
                .build_engine(Schema::numeric(arity))
                .map_err(|e| CliError::Validation(e.to_string()))?;
            EngineBackend::Memory(engine)
        }
    };

    install_shutdown_signals();
    let handle = Server::start(
        backend,
        ServerConfig {
            addr,
            max_queue,
            shutdown_flag: Some(&SERVE_SHUTDOWN),
            ..ServerConfig::default()
        },
    )
    .map_err(|e| CliError::Io(format!("binding listener: {e}")))?;
    // First stdout line is machine-readable: callers binding port 0
    // parse the ephemeral port from it.
    println!("listening on {}", handle.addr());
    let report = handle.wait();
    let rows = match report.state.query(Query::Len) {
        Response::Len(n) => n,
        _ => unreachable!("Len answers Len"),
    };
    println!(
        "shutdown complete: generation {}, {} rows",
        report.generation, rows
    );
    match report.close_error {
        Some(e) => Err(CliError::Io(format!("closing durable store: {e}"))),
        None => Ok(()),
    }
}

fn cmd_evaluate(args: &Args) -> Result<(), CliError> {
    let pred = read_labels(args.required("labels")?)?;
    let truth = read_labels(args.required("truth")?)?;
    if pred.len() != truth.len() {
        return Err(CliError::Validation(format!(
            "label count mismatch: {} predictions vs {} truths",
            pred.len(),
            truth.len()
        )));
    }
    println!("pairwise F1 = {:.4}", pairwise_f1(&pred, &truth));
    println!(
        "NMI         = {:.4}",
        normalized_mutual_information(&pred, &truth)
    );
    println!("ARI         = {:.4}", adjusted_rand_index(&pred, &truth));
    Ok(())
}

fn usage() -> CliError {
    CliError::Parse(
        "usage: disc <generate|params|detect|repair|cluster|stream|recover|serve|repl-status|evaluate> [flags]\n\
         run with a subcommand; see the crate docs for the flag reference"
            .to_string(),
    )
}

/// Writes the process-wide observability counters as a `disc-stats/1`
/// JSON document (see `disc_obs`). Runs even for failed commands so a
/// partial run's work is still accounted for.
fn write_stats(path: &str, command: &str) -> Result<(), CliError> {
    let json = disc::obs::global_json(&[("command", command)]);
    std::fs::write(path, json).map_err(|e| CliError::Io(format!("writing stats to {path}: {e}")))
}

fn main() -> ExitCode {
    let args = Args::parse();
    let command = args.positional.first().map(String::as_str);
    let mut result = match command {
        Some("generate") => cmd_generate(&args),
        Some("params") => cmd_params(&args),
        Some("detect") => cmd_detect(&args),
        Some("repair") => cmd_repair(&args),
        Some("cluster") => cmd_cluster(&args),
        Some("stream") => cmd_stream(&args),
        Some("recover") => cmd_recover(&args),
        Some("serve") => cmd_serve(&args),
        Some("repl-status") => cmd_repl_status(&args),
        Some("evaluate") => cmd_evaluate(&args),
        _ => Err(usage()),
    };
    if let Some(path) = args.get("stats") {
        let stats_result = write_stats(path, command.unwrap_or(""));
        if result.is_ok() {
            result = stats_result;
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message());
            e.exit_code()
        }
    }
}
