//! `disc` — command-line interface to the outlier-saving toolkit.
//!
//! ```text
//! disc generate --out data.csv [--n 1000] [--m 4] [--classes 3]
//!               [--dirty 50] [--natural 10] [--seed 42]
//! disc params   --data data.csv [--sample 1.0]
//! disc detect   --data data.csv [--eps E --eta H]
//! disc repair   --data data.csv --out repaired.csv [--eps E --eta H]
//!               [--kappa K] [--method disc|dorc|eracer|holoclean|holistic]
//! disc cluster  --data data.csv [--eps E --eta H] [--algo dbscan|kmeans|
//!               kmeans--|cckm|srem|kmc|optics] [--k K] [--out labels.csv]
//! disc stream   --data data.csv [--out repaired.csv] [--eps E --eta H]
//!               [--kappa K] [--batch B]
//! disc evaluate --labels predicted.csv --truth truth.csv
//! ```
//!
//! `stream` replays the CSV through the incremental engine in
//! micro-batches of `--batch` rows (default 64), printing per-batch save
//! activity; the final dataset is identical to one batch `repair` run
//! over the whole file.
//!
//! Labels for `evaluate` come from a single-column CSV aligned with the
//! data rows. When `--eps/--eta` are omitted, the Poisson procedure of the
//! paper (Section 2.1.2) determines them from the data.
//!
//! Every `--data` loader accepts `--non-finite reject|null|drop` for
//! `nan`/`inf` tokens in numeric columns: `reject` (default) fails the
//! load naming the offending line and column, `null` demotes them to
//! missing values, `drop` discards the affected rows.
//!
//! Every subcommand accepts `--stats <path.json>`: after the command
//! completes, the process-wide observability counters (index queries per
//! backend, search nodes, bound prunes, budget cancellations, …) are
//! written to the path as a stable `disc-stats/1` JSON document.

use std::collections::HashMap;
use std::process::ExitCode;

use disc::cleaning::{DiscRepairer, Dorc, Eracer, Holistic, HoloClean, Repairer};
use disc::clustering::Optics;
use disc::core::ParamConfig;
use disc::data::{csv, ClusterSpec, ErrorInjector, NonFinitePolicy};
use disc::prelude::*;
use disc_distance::Norm;

struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    fn parse() -> Args {
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        let mut it = std::env::args().skip(1).peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it.next().unwrap_or_default();
                flags.insert(name.to_string(), value);
            } else {
                positional.push(a);
            }
        }
        Args { positional, flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {s:?}")),
        }
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("--{name} is required"))
    }
}

/// Loads a CSV under the `--non-finite` policy: `reject` (default) makes
/// `nan`/`inf` tokens in numeric columns a load error; `null` demotes them
/// to missing values; `drop` discards the whole row.
fn load(path: &str, args: &Args) -> Result<Dataset, String> {
    let policy = match args.get("non-finite") {
        None => NonFinitePolicy::default(),
        Some(s) => NonFinitePolicy::parse(s)
            .ok_or_else(|| format!("--non-finite: expected reject|null|drop, got {s:?}"))?,
    };
    csv::read_file_with(path, policy).map_err(|e| format!("reading {path}: {e}"))
}

fn constraints_for(ds: &Dataset, args: &Args) -> Result<DistanceConstraints, String> {
    let dist = ds.schema().tuple_distance(Norm::L2);
    match (args.get("eps"), args.get("eta")) {
        (Some(e), Some(h)) => {
            let eps: f64 = e.parse().map_err(|_| "--eps: not a number".to_string())?;
            let eta: usize = h.parse().map_err(|_| "--eta: not an integer".to_string())?;
            Ok(DistanceConstraints::new(eps, eta))
        }
        (None, None) => {
            let sample: f64 = args.num("sample", 1.0f64.min(2000.0 / ds.len().max(1) as f64))?;
            let cfg = ParamConfig {
                sample_rate: sample,
                ..Default::default()
            };
            let choice = determine_parameters(ds.rows(), &dist, &cfg);
            eprintln!(
                "determined ε = {:.4}, η = {} (λε = {:.2}, violation rate {:.1}%)",
                choice.eps,
                choice.eta,
                choice.lambda,
                choice.outlier_rate * 100.0
            );
            Ok(DistanceConstraints::new(
                choice.eps.max(1e-9),
                choice.eta.max(1),
            ))
        }
        _ => Err("--eps and --eta must be given together".into()),
    }
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let out = args.required("out")?;
    let n: usize = args.num("n", 1000)?;
    let m: usize = args.num("m", 4)?;
    let classes: usize = args.num("classes", 3)?;
    let dirty: usize = args.num("dirty", n / 20)?;
    let natural: usize = args.num("natural", n / 100)?;
    let seed: u64 = args.num("seed", 42)?;
    let mut ds = ClusterSpec::new(n, m, classes, seed).generate();
    let log = ErrorInjector::new(dirty.min(n), natural, seed ^ 0xC11).inject(&mut ds);
    csv::write_file(&ds, out).map_err(|e| e.to_string())?;
    // Ground-truth labels go to <out>.labels.csv for `evaluate`.
    let labels_path = format!("{out}.labels.csv");
    let labels = ds.labels().expect("generated data is labeled");
    let mut text = String::from("label\n");
    for l in labels {
        text.push_str(&format!("{l}\n"));
    }
    std::fs::write(&labels_path, text).map_err(|e| e.to_string())?;
    println!(
        "wrote {} rows × {} attrs to {out} ({} dirty, {} natural outliers); labels in {labels_path}",
        ds.len(),
        ds.arity(),
        log.errors.len(),
        log.natural_rows.len()
    );
    Ok(())
}

fn cmd_params(args: &Args) -> Result<(), String> {
    let ds = load(args.required("data")?, args)?;
    let dist = ds.schema().tuple_distance(Norm::L2);
    let sample: f64 = args.num("sample", 1.0f64.min(2000.0 / ds.len().max(1) as f64))?;
    let cfg = ParamConfig {
        sample_rate: sample,
        ..Default::default()
    };
    let choice = determine_parameters(ds.rows(), &dist, &cfg);
    println!(
        "ε = {:.6}\nη = {}\nλε = {:.3}\nviolation rate = {:.2}%\nelapsed = {:.3}s",
        choice.eps,
        choice.eta,
        choice.lambda,
        choice.outlier_rate * 100.0,
        choice.elapsed.as_secs_f64()
    );
    Ok(())
}

fn cmd_detect(args: &Args) -> Result<(), String> {
    let ds = load(args.required("data")?, args)?;
    let dist = ds.schema().tuple_distance(Norm::L2);
    let c = constraints_for(&ds, args)?;
    let split = disc::core::detect_outliers(ds.rows(), &dist, c);
    println!(
        "{} of {} tuples violate (ε = {:.4}, η = {})",
        split.outliers.len(),
        ds.len(),
        c.eps,
        c.eta
    );
    for &row in &split.outliers {
        println!("{row}\t{} ε-neighbors", split.counts[row]);
    }
    Ok(())
}

fn cmd_repair(args: &Args) -> Result<(), String> {
    let mut ds = load(args.required("data")?, args)?;
    let out = args.required("out")?;
    let dist = ds.schema().tuple_distance(Norm::L2);
    let c = constraints_for(&ds, args)?;
    let kappa: usize = args.num("kappa", 2)?;
    let method = args.get("method").unwrap_or("disc");
    let repairer: Box<dyn Repairer> = match method {
        "disc" => Box::new(DiscRepairer(
            SaverConfig::new(c, dist.clone())
                .kappa(kappa.max(1))
                .build_approx()
                .unwrap(),
        )),
        "dorc" => Box::new(Dorc::new(c, dist.clone())),
        "eracer" => Box::new(Eracer::new()),
        "holoclean" => Box::new(HoloClean::new()),
        "holistic" => Box::new(Holistic::new()),
        other => return Err(format!("unknown --method {other:?}")),
    };
    let report = repairer.repair(&mut ds);
    csv::write_file(&ds, out).map_err(|e| e.to_string())?;
    println!(
        "{}: modified {} rows / {} cells; wrote {out}",
        repairer.name(),
        report.rows_modified(),
        report.cells_modified()
    );
    for (row, attrs) in &report.rows {
        println!("{row}\tattrs {:?}", attrs.iter().collect::<Vec<_>>());
    }
    Ok(())
}

fn cmd_cluster(args: &Args) -> Result<(), String> {
    let ds = load(args.required("data")?, args)?;
    let dist = ds.schema().tuple_distance(Norm::L2);
    let c = constraints_for(&ds, args)?;
    let k: usize = args.num("k", 3)?;
    let l: usize = args.num("l", ds.len() / 20)?;
    let seed: u64 = args.num("seed", 42)?;
    let algo = args.get("algo").unwrap_or("dbscan");
    let algorithm: Box<dyn ClusteringAlgorithm> = match algo {
        "dbscan" => Box::new(Dbscan::new(c.eps, c.eta)),
        "optics" => Box::new(Optics::new(c.eps, c.eta)),
        "kmeans" => Box::new(KMeans::new(k, seed)),
        "kmeans--" => Box::new(KMeansMinus::new(k, l, seed)),
        "cckm" => Box::new(Cckm::new(k, l, seed)),
        "srem" => Box::new(Srem::new(k, seed)),
        "kmc" => Box::new(Kmc::new(k, seed)),
        other => return Err(format!("unknown --algo {other:?}")),
    };
    let labels = algorithm.cluster(ds.rows(), &dist);
    let clusters = {
        let mut ids: Vec<u32> = labels.iter().copied().filter(|&l| l != u32::MAX).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    };
    let noise = labels.iter().filter(|&&l| l == u32::MAX).count();
    println!(
        "{}: {clusters} clusters, {noise} noise points",
        algorithm.name()
    );
    if let Some(out) = args.get("out") {
        let mut text = String::from("label\n");
        for l in &labels {
            text.push_str(&format!("{l}\n"));
        }
        std::fs::write(out, text).map_err(|e| e.to_string())?;
        println!("labels written to {out}");
    }
    Ok(())
}

fn read_labels(path: &str) -> Result<Vec<u32>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    text.lines()
        .skip(1)
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.trim().parse().map_err(|_| format!("bad label {l:?}")))
        .collect()
}

fn cmd_stream(args: &Args) -> Result<(), String> {
    let ds = load(args.required("data")?, args)?;
    let dist = ds.schema().tuple_distance(Norm::L2);
    let c = constraints_for(&ds, args)?;
    let kappa: usize = args.num("kappa", 2)?;
    let batch: usize = args.num("batch", 64)?;
    if batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    let saver = SaverConfig::new(c, dist)
        .kappa(kappa.max(1))
        .build_approx()
        .map_err(|e| e.to_string())?;
    let mut engine = DiscEngine::new(ds.schema().clone(), Box::new(saver));
    for (i, chunk) in ds.rows().chunks(batch).enumerate() {
        let report = engine
            .ingest(chunk.to_vec())
            .map_err(|e| format!("batch {i}: {e}"))?;
        println!(
            "batch {i}: +{} rows, {} dirty, {} saved, {} natural{}",
            chunk.len(),
            report.outliers.len(),
            report.saved.len(),
            report.unsaved.len(),
            if report.degraded { " (degraded)" } else { "" }
        );
    }
    let outliers = engine.outliers();
    println!(
        "stream done: {} rows, {} current outliers, {} pending retries",
        engine.len(),
        outliers.len(),
        engine.pending().len()
    );
    if let Some(out) = args.get("out") {
        csv::write_file(engine.dataset(), out).map_err(|e| e.to_string())?;
        println!("wrote {out}");
    }
    Ok(())
}

fn cmd_evaluate(args: &Args) -> Result<(), String> {
    let pred = read_labels(args.required("labels")?)?;
    let truth = read_labels(args.required("truth")?)?;
    if pred.len() != truth.len() {
        return Err(format!(
            "label count mismatch: {} predictions vs {} truths",
            pred.len(),
            truth.len()
        ));
    }
    println!("pairwise F1 = {:.4}", pairwise_f1(&pred, &truth));
    println!(
        "NMI         = {:.4}",
        normalized_mutual_information(&pred, &truth)
    );
    println!("ARI         = {:.4}", adjusted_rand_index(&pred, &truth));
    Ok(())
}

fn usage() -> String {
    "usage: disc <generate|params|detect|repair|cluster|stream|evaluate> [flags]\n\
     run with a subcommand; see the crate docs for the flag reference"
        .to_string()
}

/// Writes the process-wide observability counters as a `disc-stats/1`
/// JSON document (see `disc_obs`). Runs even for failed commands so a
/// partial run's work is still accounted for.
fn write_stats(path: &str, command: &str) -> Result<(), String> {
    let json = disc::obs::global_json(&[("command", command)]);
    std::fs::write(path, json).map_err(|e| format!("writing stats to {path}: {e}"))
}

fn main() -> ExitCode {
    let args = Args::parse();
    let command = args.positional.first().map(String::as_str);
    let mut result = match command {
        Some("generate") => cmd_generate(&args),
        Some("params") => cmd_params(&args),
        Some("detect") => cmd_detect(&args),
        Some("repair") => cmd_repair(&args),
        Some("cluster") => cmd_cluster(&args),
        Some("stream") => cmd_stream(&args),
        Some("evaluate") => cmd_evaluate(&args),
        _ => Err(usage()),
    };
    if let Some(path) = args.get("stats") {
        let stats_result = write_stats(path, command.unwrap_or(""));
        if result.is_ok() {
            result = stats_result;
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
