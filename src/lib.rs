//! # DISC — Saving Outliers for Better Clustering over Noisy Data
//!
//! Facade crate over the DISC workspace: a from-scratch Rust reproduction
//! of Song, Gao, Huang and Wang, *"On Saving Outliers for Better Clustering
//! over Noisy Data"* (SIGMOD 2021).
//!
//! Dirty values make tuples outlying and mislead clustering — DBSCAN drops
//! outliers, K-Means force-assigns them, and tuple-substitution cleaners
//! such as DORC over-change every attribute. DISC instead *saves* each
//! outlier by minimally adjusting a subset of its attribute values until it
//! satisfies the distance constraints `(ε, η)` — at least `η` neighbors
//! within distance `ε` — so it joins a cluster without distorting the rest.
//!
//! ## Quickstart
//!
//! ```
//! use disc::prelude::*;
//!
//! // A tight 2-D cluster around the origin, plus one dirty tuple whose
//! // second attribute was recorded in the wrong unit.
//! let mut dataset = Dataset::from_rows(
//!     vec!["x".into(), "y".into()],
//!     (0..20)
//!         .map(|i| vec![Value::Num(0.1 * (i % 5) as f64), Value::Num(0.1 * (i / 5) as f64)])
//!         .collect::<Vec<_>>(),
//! );
//! dataset.push(vec![Value::Num(0.2), Value::Num(25.4)]); // dirty outlier
//!
//! let constraints = DistanceConstraints::new(0.5, 3);
//! let saver = SaverConfig::new(constraints, TupleDistance::numeric(2)).build_approx().unwrap();
//! let report = saver.save_all(&mut dataset);
//!
//! assert_eq!(report.saved.len(), 1);          // the dirty tuple was saved …
//! let fixed = &dataset.rows()[20];
//! assert!(fixed[1].expect_num() < 1.0);        // … by adjusting only `y`
//! assert_eq!(fixed[0].expect_num(), 0.2);      // `x` is untouched
//! ```
//!
//! The member crates are re-exported in full:
//!
//! * [`distance`] — per-attribute metrics, norms, attribute sets;
//! * [`data`] — schema/tuples/datasets, synthetic generators, error injection;
//! * [`index`] — ε-range and k-NN neighbor search backends;
//! * [`core`] — the DISC algorithm, bounds, parameter determination;
//! * [`clustering`] — DBSCAN, K-Means, K-Means--, CCKM, SREM, KMC;
//! * [`cleaning`] — DORC, ERACER, HoloClean, Holistic, SSE baselines;
//! * [`metrics`] — F1 / NMI / ARI / Jaccard evaluation;
//! * [`ml`] — decision-tree classification and record matching;
//! * [`obs`] — observability: stage timers, search counters, per-run
//!   statistics ([`core::SaveReport::stats`]) and the `--stats` JSON export;
//! * [`persist`] — crash-safe engine state: checksummed snapshots plus a
//!   write-ahead ingest log with deterministic recovery;
//! * [`serve`] — a concurrent multi-client TCP serving layer
//!   (newline-delimited JSON) with single-writer batch coalescing,
//!   snapshot reads, admission-control backpressure, and graceful
//!   WAL-draining shutdown;
//! * [`replicate`] — leader→follower replication: WAL frames shipped
//!   over the serving socket into catch-up read replicas that are
//!   bit-equal to the leader at every acked generation.

pub use disc_cleaning as cleaning;
pub use disc_clustering as clustering;
pub use disc_core as core;
pub use disc_data as data;
pub use disc_distance as distance;
pub use disc_index as index;
pub use disc_metrics as metrics;
pub use disc_ml as ml;
pub use disc_obs as obs;
pub use disc_persist as persist;
pub use disc_replicate as replicate;
pub use disc_serve as serve;

/// Commonly used items in one import.
pub mod prelude {
    pub use disc_cleaning::{Dorc, Eracer, Holistic, HoloClean, Repairer, Sse};
    pub use disc_clustering::{
        Cckm, ClusteringAlgorithm, Dbscan, KMeans, KMeansMinus, Kmc, Optics, Srem,
    };
    pub use disc_core::{
        determine_parameters, Budget, DiscEngine, DiscSaver, DistanceConstraints, EngineConfig,
        Error, ExactSaver, Parallelism, Query, Response, SaveReport, Saver, SaverConfig,
    };
    pub use disc_data::{Dataset, NonFinitePolicy, Schema};
    pub use disc_distance::{AttrSet, Metric, Norm, TupleDistance, Value};
    pub use disc_index::{BruteForceIndex, GridIndex, NeighborIndex, VpTree};
    pub use disc_metrics::{adjusted_rand_index, normalized_mutual_information, pairwise_f1};
    pub use disc_ml::{DecisionTree, RecordMatcher};
}
