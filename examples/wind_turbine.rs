//! Wind-turbine sensor repair — the paper's motivating IoT scenario
//! (Sections 1.2 and 2.2): "usually only one or several sensors are
//! broken at a time among hundreds of sensors packed in a wind turbine".
//!
//! Readings from many sensors form operating-regime clusters; when one or
//! two sensors glitch, the reading becomes outlying. With κ = 2, DISC
//! repairs the broken channels and leaves the healthy ones alone, while a
//! reading from a different wind farm (natural outlier, all channels
//! shifted) is flagged rather than rewritten.
//!
//! In 12 dimensions the within-cluster pair distances concentrate around
//! `σ·√(2m) ≈ 4.9σ`, so the distance threshold must sit above that scale
//! *plus* the typical η-th-neighbor distance for the Proposition 5
//! feasibility certificate to fire — domain knowledge the operator has;
//! the data-driven Poisson procedure is demonstrated on lower-dimensional
//! data in the `parameter_tuning` example.
//!
//! ```sh
//! cargo run --example wind_turbine
//! ```

use disc::data::{ClusterSpec, ErrorInjector, OutlierKind};
use disc::prelude::*;

fn main() {
    // 12 sensor channels, two operating regimes (low wind / high wind).
    let m = 12;
    let mut ds = ClusterSpec::new(400, m, 2, 7).generate();
    // Break 1–2 sensors on 20 readings and add 5 readings from another
    // wind farm.
    let log = ErrorInjector::new(20, 5, 99).inject(&mut ds);
    let kinds = log.kinds(ds.len());

    let dist = TupleDistance::numeric(m);
    // ε ≈ 2× the within-cluster scale (σ·√(2m) ≈ 4.9 here): a healthy
    // reading sees most of its regime, a broken one sees nobody.
    let constraints = DistanceConstraints::new(9.0, 4);

    // Only trust repairs touching at most 2 sensors (κ = 2).
    let saver = SaverConfig::new(constraints, dist.clone())
        .kappa(2)
        .build_approx()
        .unwrap();
    let report = saver.save_all(&mut ds);
    println!(
        "detected {} outliers; saved {}, left {} unchanged",
        report.outliers.len(),
        report.saved.len(),
        report.unsaved.len()
    );

    // Score: how many broken readings were saved, how many healthy sensor
    // values survived, and what happened to the foreign readings.
    let mut dirty_saved = 0;
    let mut natural_saved = 0;
    for s in &report.saved {
        match kinds[s.row] {
            OutlierKind::Dirty => dirty_saved += 1,
            OutlierKind::Natural => natural_saved += 1,
            OutlierKind::Clean => {}
        }
    }
    let dirty_total = log.errors.len();
    println!(
        "saved {}/{} broken readings; {}/{} foreign readings rewritten (should be ~0)",
        dirty_saved,
        dirty_total,
        natural_saved,
        log.natural_rows.len()
    );

    // Check which sensors DISC repaired against the injected ground truth.
    let mut exact_channel_hits = 0;
    for e in &log.errors {
        if let Some(adj) = report.adjustment_of(e.row) {
            if adj.adjusted.is_subset(&e.attrs) || e.attrs.is_subset(&adj.adjusted) {
                exact_channel_hits += 1;
            }
        }
    }
    println!("repairs overlapping the truly broken channels: {exact_channel_hits}/{dirty_saved}");

    assert!(
        dirty_saved * 10 >= dirty_total * 5,
        "most broken readings must be saved"
    );
    assert!(
        natural_saved <= log.natural_rows.len() / 2,
        "foreign readings must mostly stay untouched"
    );
}
