//! Record matching on dirty text data — the paper's Restaurant scenario
//! (Sections 1.1 and 4.2.5).
//!
//! A typo in a zip code (`RH10-0AG` recorded with letter `O` instead of
//! digit `0`) breaks duplicate detection. Saving the outlying record under
//! edit-distance constraints restores the match.
//!
//! ```sh
//! cargo run --example record_matching
//! ```

use disc::data::Schema;
use disc::prelude::*;

fn record(name: &str, city: &str, zip: &str) -> Vec<Value> {
    vec![
        Value::Text(name.into()),
        Value::Text(city.into()),
        Value::Text(zip.into()),
    ]
}

fn main() {
    // A little restaurant registry: every real-world entity is recorded
    // twice (same label = same entity), so every legitimate record has a
    // duplicate within edit distance 0.
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    let entities = [
        ("thai palace", "crawley", "RH10-0AG"),
        ("golden curry", "crawley", "RH10-0AB"),
        ("sushi corner", "crawley", "RH10-0AC"),
        ("pizza garden", "crawley", "RH10-0AD"),
        ("river cafe", "crawley", "RH10-0AE"),
    ];
    for (g, (name, city, zip)) in entities.iter().enumerate() {
        rows.push(record(name, city, zip));
        rows.push(record(name, city, zip));
        labels.push(g as u32);
        labels.push(g as u32);
    }
    // The dirty record: a third sighting of "thai palace" whose zip was
    // typed with letter O for digit 0 (twice) — outlying under edit
    // distance, and unmatched by the n-gram rule.
    rows.push(record("thai palace", "crawley", "RH1O-OAG"));
    labels.push(0);
    let dirty_row = rows.len() - 1;

    let mut ds = Dataset::new(Schema::text(3), rows).with_labels(labels);
    let dist = TupleDistance::textual(3);
    let matcher = RecordMatcher::new();

    let before = matcher.run(&ds);
    println!(
        "matching on dirty data: precision {:.3}, recall {:.3}, F1 {:.3}",
        before.precision(),
        before.recall(),
        before.f1()
    );

    // Edit-distance constraints: a legitimate record has at least η = 2
    // ε-neighbors (itself and its duplicate) at ε = 1; the typo'd record
    // sits at edit distance 2 from its duplicates and violates.
    let saver = SaverConfig::new(DistanceConstraints::new(1.0, 2), dist)
        .kappa(1)
        .build_approx()
        .unwrap();
    let report = saver.save_all(&mut ds);
    assert_eq!(
        report.outliers,
        vec![dirty_row],
        "only the typo'd record violates"
    );
    for saved in &report.saved {
        println!("saved row {}: zip -> {}", saved.row, ds.row(saved.row)[2]);
    }

    let after = matcher.run(&ds);
    println!(
        "matching after outlier saving: precision {:.3}, recall {:.3}, F1 {:.3}",
        after.precision(),
        after.recall(),
        after.f1()
    );
    assert_eq!(
        ds.row(dirty_row)[2].as_text(),
        Some("RH10-0AG"),
        "zip repaired to the clean form"
    );
    assert!(
        after.f1() > before.f1(),
        "the repaired typo restores the duplicate pair"
    );
}
