//! Quickstart: save a dirty outlier and watch DBSCAN recover the true
//! clusters — the paper's Figure 1 story in miniature.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use disc::prelude::*;

fn main() {
    // Two tight 2-D clusters ("petal length" × "petal width"): the ground
    // truth has two species.
    let mut rows = Vec::new();
    let mut truth = Vec::new();
    for i in 0..25 {
        rows.push(vec![
            Value::Num(1.0 + 0.04 * (i % 5) as f64),
            Value::Num(0.2 + 0.04 * (i / 5) as f64),
        ]);
        truth.push(0u32);
    }
    for i in 0..25 {
        rows.push(vec![
            Value::Num(4.5 + 0.06 * (i % 5) as f64),
            Value::Num(1.4 + 0.06 * (i / 5) as f64),
        ]);
        truth.push(1u32);
    }
    // One observation was recorded in inch instead of cm: the width 1.5cm
    // became 1.5in ≈ 3.8 → the tuple (4.6, 3.8) is outlying.
    rows.push(vec![Value::Num(4.6), Value::Num(3.8)]);
    truth.push(1);

    let mut dataset =
        Dataset::from_rows(vec!["length".into(), "width".into()], rows).with_labels(truth.clone());

    let dist = TupleDistance::numeric(2);
    let constraints = DistanceConstraints::new(0.3, 4);

    // Clustering the dirty data: the outlier is noise, accuracy suffers.
    let dirty_labels = Dbscan::new(constraints.eps, constraints.eta).cluster(dataset.rows(), &dist);
    let dirty_f1 = pairwise_f1(&dirty_labels, &truth);
    println!("DBSCAN F1 on dirty data: {dirty_f1:.4}");

    // Save the outlier: DISC adjusts only the erroneous width value.
    let saver = SaverConfig::new(constraints, dist.clone())
        .kappa(1)
        .build_approx()
        .unwrap();
    let report = saver.save_all(&mut dataset);
    for saved in &report.saved {
        let adj = &saved.adjustment;
        println!(
            "saved row {}: adjusted attributes {:?}, cost {:.4}, new value ({}, {})",
            saved.row,
            adj.adjusted.iter().collect::<Vec<_>>(),
            adj.cost,
            dataset.row(saved.row)[0],
            dataset.row(saved.row)[1],
        );
    }

    // Clustering the saved data recovers the two species.
    let saved_labels = Dbscan::new(constraints.eps, constraints.eta).cluster(dataset.rows(), &dist);
    let saved_f1 = pairwise_f1(&saved_labels, &truth);
    println!("DBSCAN F1 after outlier saving: {saved_f1:.4}");
    assert!(saved_f1 >= dirty_f1, "saving must not hurt");
}
