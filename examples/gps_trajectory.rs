//! GPS trajectory repair — the paper's Example 1 (Figure 2).
//!
//! A trajectory of (Time, Longitude, Latitude) readings contains two
//! device errors: one corrupted longitude and one corrupted timestamp.
//! DISC adjusts exactly the erroneous attribute of each reading, while
//! DORC-style substitution over-changes all three; natural outliers from a
//! different recording session are left untouched.
//!
//! ```sh
//! cargo run --example gps_trajectory
//! ```

use disc::cleaning::{Dorc, Repairer};
use disc::prelude::*;

fn main() {
    // A smooth 40-step walk.
    let mut rows = Vec::new();
    for t in 0..40 {
        let time = t as f64;
        let lon = 807.0 + 0.9 * t as f64 + 0.2 * (t as f64 * 0.7).sin();
        let lat = 156.0 + 0.6 * t as f64 + 0.2 * (t as f64 * 0.5).cos();
        rows.push(vec![Value::Num(time), Value::Num(lon), Value::Num(lat)]);
    }
    // t₁₃: the longitude spikes from ~819 to 860 (device glitch).
    let clean_13 = rows[13].clone();
    rows[13][1] = Value::Num(860.0);
    // t₂₄: the timestamp is recorded as 18 instead of 24.
    let clean_24 = rows[24].clone();
    rows[24][0] = Value::Num(11.5);
    // Two natural outliers: readings from another session, far away in
    // every attribute.
    rows.push(vec![
        Value::Num(500.0),
        Value::Num(1200.0),
        Value::Num(900.0),
    ]);
    rows.push(vec![
        Value::Num(-300.0),
        Value::Num(100.0),
        Value::Num(-50.0),
    ]);

    let schema_names = vec!["Time".into(), "Longitude".into(), "Latitude".into()];
    let dist = TupleDistance::numeric(3);
    // η = 2 as in the paper's Example 2 (ε there is 0.28 on
    // normalized values; our walk uses raw units).
    let constraints = DistanceConstraints::new(3.2, 2);

    // --- DISC: minimal per-attribute adjustment, κ = 1. ---
    let mut disc_ds = Dataset::from_rows(schema_names.clone(), rows.clone());
    let saver = SaverConfig::new(constraints, dist.clone())
        .kappa(1)
        .build_approx()
        .unwrap();
    let report = saver.save_all(&mut disc_ds);

    println!("outliers detected: {:?}", report.outliers);
    for saved in &report.saved {
        println!(
            "DISC saved row {:>2}: adjusted {:?} -> ({}, {}, {}), cost {:.3}",
            saved.row,
            saved.adjustment.adjusted.iter().collect::<Vec<_>>(),
            disc_ds.row(saved.row)[0],
            disc_ds.row(saved.row)[1],
            disc_ds.row(saved.row)[2],
            saved.adjustment.cost,
        );
    }
    println!("left as natural outliers: {:?}", report.unsaved);

    // The corrupted attribute was fixed, the clean ones kept.
    assert_eq!(
        disc_ds.row(13)[0],
        clean_13[0],
        "t13 time must be untouched"
    );
    assert_eq!(
        disc_ds.row(13)[2],
        clean_13[2],
        "t13 latitude must be untouched"
    );
    assert!(
        disc_ds.row(13)[1].expect_num() < 840.0,
        "t13 longitude adjusted back"
    );
    assert_eq!(
        disc_ds.row(24)[1],
        clean_24[1],
        "t24 longitude must be untouched"
    );
    assert!(report.unsaved.len() >= 2, "natural outliers stay unchanged");

    // --- DORC: wholesale tuple substitution for contrast. ---
    let mut dorc_ds = Dataset::from_rows(schema_names, rows);
    let dorc_report = Dorc::new(constraints, dist.clone()).repair(&mut dorc_ds);
    let dorc_changed: f64 = dorc_report
        .rows
        .iter()
        .map(|(_, a)| a.len() as f64)
        .sum::<f64>()
        / dorc_report.rows.len().max(1) as f64;
    let disc_changed: f64 = report
        .saved
        .iter()
        .map(|s| s.adjustment.adjusted.len() as f64)
        .sum::<f64>()
        / report.saved.len().max(1) as f64;
    println!("avg attributes changed per repaired tuple: DISC {disc_changed:.2} vs DORC {dorc_changed:.2}");
    assert!(
        disc_changed < dorc_changed,
        "DISC must change fewer attributes than DORC"
    );
}
