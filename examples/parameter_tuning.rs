//! Parameter determination in practice (Section 2.1.2, Figure 5, Table 4).
//!
//! Shows how the distance constraints `(ε, η)` fall out of the Poisson
//! model of ε-neighbor counts, how sampling accelerates the fit, and how
//! the Normal-distribution "DB" baseline miscalibrates on clustered data.
//!
//! ```sh
//! cargo run --example parameter_tuning
//! ```

use disc::core::{
    determine_parameters, determine_parameters_db, neighbor_counts, poisson_eta_for,
    poisson_p_at_least, ParamConfig,
};
use disc::data::ClusterSpec;
use disc::prelude::*;

fn main() {
    let ds = ClusterSpec::new(2000, 5, 4, 3).generate();
    let dist = TupleDistance::numeric(5);

    // Fit at three sampling rates, like Table 4.
    for rate in [1.0, 0.1, 0.01] {
        let cfg = ParamConfig {
            sample_rate: rate,
            ..Default::default()
        };
        let choice = determine_parameters(ds.rows(), &dist, &cfg);
        println!(
            "sample {:>5.1}%: ε = {:.3}, η = {:>2}, λε = {:6.2}, violations {:.2}%, {:.1} ms",
            rate * 100.0,
            choice.eps,
            choice.eta,
            choice.lambda,
            choice.outlier_rate * 100.0,
            choice.elapsed.as_secs_f64() * 1000.0,
        );
    }

    // The Poisson reasoning made explicit: with the fitted λε, how likely
    // is a clustered tuple to have at least η neighbors?
    let cfg = ParamConfig::default();
    let choice = determine_parameters(ds.rows(), &dist, &cfg);
    let p = poisson_p_at_least(choice.lambda, choice.eta);
    println!(
        "\nPoisson check: P(N(ε) ≥ {}) = {:.4} at λε = {:.2} (target ≥ {})",
        choice.eta, p, choice.lambda, cfg.target_probability
    );
    assert!(p >= cfg.target_probability);
    assert_eq!(
        choice.eta,
        poisson_eta_for(choice.lambda, cfg.target_probability)
    );

    // The empirical neighbor-count distribution at the chosen ε.
    let sample: Vec<usize> = (0..200).collect();
    let counts = neighbor_counts(ds.rows(), &dist, choice.eps, &sample);
    let below = counts.iter().filter(|&&c| c < choice.eta).count();
    println!("empirical: {below}/200 sampled tuples below η — these would be flagged outlying");

    // The DB (Normal-fit) baseline lands far from the Poisson choice.
    let db = determine_parameters_db(ds.rows(), &dist, &cfg);
    println!(
        "\nDB baseline: ε = {:.3}, η = {} (vs DISC ε = {:.3}, η = {})",
        db.eps, db.eta, choice.eps, choice.eta
    );
    let ratio = db.eps / choice.eps;
    println!("ε ratio DB/DISC = {ratio:.2} — miscalibrated on multi-modal distances");
}
