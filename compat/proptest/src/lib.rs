//! Offline stand-in for the parts of `proptest` this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace resolves
//! `proptest` to this self-contained subset:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//!   `arg in strategy` bindings;
//! * [`Strategy`] implementations for numeric ranges, character-class
//!   string patterns (`"[a-z0-9]{0,8}"`), and [`collection::vec`];
//! * `prop_assert!`, `prop_assert_eq!`, and `prop_assume!`.
//!
//! Each test runs `cases` deterministic pseudo-random inputs (seeded from
//! the test name, so failures reproduce across runs). There is no
//! shrinking: a failing case panics with the offending inputs printed by
//! the assertion itself.

use std::ops::{Range, RangeInclusive};

/// The deterministic generator driving every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for one test case, derived from the test name and case
    /// index so every run of the suite sees the same inputs.
    pub fn deterministic(name_hash: u64, case: u64) -> Self {
        TestRng {
            state: name_hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// FNV-1a hash of a test name, used to seed its case stream.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                start + (end - start) * rng.next_f64() as $t
            }
        }
    )*};
}

float_strategy!(f32, f64);

/// String strategies are character-class patterns `"[class]{min,max}"`
/// (also `{n}`), where the class supports ranges (`a-z`) and literal
/// characters, e.g. `"[a-zA-Z0-9]{0,8}"` or `"[ -~]{0,12}"`.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) =
            parse_pattern(self).unwrap_or_else(|| panic!("unsupported string pattern: {self:?}"));
        let len = if max > min {
            min + rng.below((max - min + 1) as u64) as usize
        } else {
            min
        };
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[class]{min,max}` / `[class]{n}` into (alphabet, min, max).
fn parse_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.rfind(']')?;
    let (class, counts) = rest.split_at(close);
    let counts = counts
        .strip_prefix(']')?
        .strip_prefix('{')?
        .strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    let chars: Vec<char> = class.chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            if lo > hi {
                return None;
            }
            alphabet.extend(lo..=hi);
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, min, max))
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element count of [`vec()`]: an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min
                + if span > 1 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The default case count, used as the baseline when rescaling via the
/// `PROPTEST_CASES` environment variable.
pub const DEFAULT_CASES: u32 = 64;

/// The effective case count for a block configured with `configured`
/// cases: when the `PROPTEST_CASES` environment variable is a positive
/// integer, counts rescale *proportionally* (`configured ×
/// PROPTEST_CASES / 64`, minimum 1), so a block deliberately configured
/// lighter or heavier than the default keeps its relative weight — real
/// proptest's absolute override would erase that tuning. Unset or
/// unparsable values leave `configured` unchanged.
pub fn scaled_cases(configured: u32) -> u32 {
    let target = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok());
    scaled_cases_for(configured, target)
}

/// [`scaled_cases`] with the parsed target injected, for tests.
pub fn scaled_cases_for(configured: u32, target: Option<u64>) -> u32 {
    match target {
        Some(t) if t > 0 => {
            let scaled = (configured as u64).saturating_mul(t) / DEFAULT_CASES as u64;
            scaled.clamp(1, u32::MAX as u64) as u32
        }
        _ => configured,
    }
}

/// Re-exports mirroring `proptest::prelude::*` (including the `prop`
/// module path used for `prop::collection::vec`).
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};

    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __cases = $crate::scaled_cases(__cfg.cases);
                let __hash = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..(__cases as u64) {
                    let mut __rng = $crate::TestRng::deterministic(__hash, __case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Must be used at the top level of the test body (it `continue`s the
/// case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn scaled_cases_rescales_proportionally() {
        use super::scaled_cases_for;
        // No target (or zero): configured count unchanged.
        assert_eq!(scaled_cases_for(64, None), 64);
        assert_eq!(scaled_cases_for(12, None), 12);
        assert_eq!(scaled_cases_for(12, Some(0)), 12);
        // Target 512 = 8× default: every block scales 8×.
        assert_eq!(scaled_cases_for(64, Some(512)), 512);
        assert_eq!(scaled_cases_for(12, Some(512)), 96);
        // Scaling down never reaches zero.
        assert_eq!(scaled_cases_for(12, Some(1)), 1);
        // Huge targets saturate instead of overflowing.
        assert_eq!(scaled_cases_for(u32::MAX, Some(u64::MAX)), u32::MAX);
    }

    #[test]
    fn pattern_parser_handles_classes() {
        let (alpha, min, max) = super::parse_pattern("[a-c]{1,3}").unwrap();
        assert_eq!(alpha, vec!['a', 'b', 'c']);
        assert_eq!((min, max), (1, 3));
        let (alpha, _, _) = super::parse_pattern("[ -~]{0,12}").unwrap();
        assert_eq!(alpha.len(), 95); // printable ASCII
        let (alpha, _, _) = super::parse_pattern("[a-z ]{0,15}").unwrap();
        assert_eq!(alpha.len(), 27);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Strategies respect their declared ranges.
        #[test]
        fn ranges_in_bounds(x in -5.0f64..5.0, n in 1usize..10, s in "[a-z]{2,4}") {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        /// Vec strategies produce the requested sizes, including nesting.
        #[test]
        fn vec_sizes(v in prop::collection::vec(0u32..100, 3..7),
                     w in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 2), 4)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert_eq!(w.len(), 4);
            for inner in &w {
                prop_assert_eq!(inner.len(), 2);
            }
        }

        /// prop_assume skips non-conforming cases.
        #[test]
        fn assume_filters(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }
}
