//! Offline stand-in for the parts of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `rand` to this self-contained implementation. It mirrors the
//! `rand` 0.9+ naming used by the callers — [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and the [`RngExt`] extension methods `random_range`
//! / `random_bool` — with a deterministic xoshiro256++ generator seeded
//! via SplitMix64. Streams differ from upstream `rand`, which is fine for
//! this repo: every consumer seeds explicitly and asserts statistical
//! (not stream-exact) properties.

use std::ops::{Range, RangeInclusive};

/// A random number generator yielding `u64`s.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods mirroring the `rand 0.9` `Rng` sampling API.
pub trait RngExt: Rng {
    /// A uniform sample from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.next_f64() < p
    }
}

impl<T: Rng + ?Sized> RngExt for T {}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2^-64 per draw for the spans used here.
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = rng.next_f64() as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let u = rng.next_f64() as $t;
                start + (end - start) * u
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded through
    /// SplitMix64 (the initialization recommended by its authors).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&y));
            let z = rng.random_range(1usize..=4);
            assert!((1..=4).contains(&z));
        }
    }

    #[test]
    fn bool_probability_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn floats_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let x = rng.random_range(0.0f64..1.0);
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }
}
