//! Offline stand-in for the parts of `criterion` this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace resolves
//! `criterion` to this self-contained subset: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — per benchmark it runs a warmup
//! pass, then `sample_size` timed samples, and reports min / median / max
//! of the per-iteration wall-clock time. When the binary is invoked by
//! `cargo test` (criterion-style `--test` flag, any `--list`-style harness
//! probe, or `NEXTEST`), each benchmark body runs exactly once so the test
//! suite stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Returns true when the bench binary is being smoke-run by a test
/// harness rather than properly benchmarked.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--list")
}

/// Top-level driver handed to every benchmark function.
pub struct Criterion {
    sample_size: usize,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            quick: test_mode(),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            quick: self.quick,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, self.quick, f);
        self
    }
}

/// A named group; mirrors `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    quick: bool,
}

impl BenchmarkGroup {
    /// Overrides the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id.0),
            self.sample_size,
            self.quick,
            f,
        );
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id.0),
            self.sample_size,
            self.quick,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Batch-size hint for [`Bencher::iter_batched`]; measurement ignores it.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Times closures; handed to every benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    quick: bool,
}

impl Bencher {
    /// Times `f`, one sample per call.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let n = if self.quick { 1 } else { self.sample_size };
        if !self.quick {
            black_box(f()); // warmup
        }
        for _ in 0..n {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let n = if self.quick { 1 } else { self.sample_size };
        if !self.quick {
            black_box(routine(setup())); // warmup
        }
        for _ in 0..n {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, quick: bool, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        quick,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = b.samples[b.samples.len() - 1];
    println!(
        "{name:<50} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion {
            sample_size: 3,
            quick: true,
        };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter_batched(|| n, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
        c.bench_function("top", |b| b.iter(|| black_box(2) * 2));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
