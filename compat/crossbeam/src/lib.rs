//! Offline stand-in for the parts of `crossbeam` this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace resolves
//! `crossbeam` to this shim. Only scoped threads are needed; since Rust
//! 1.63 the standard library provides them natively, so [`thread::scope`]
//! is a direct re-export of [`std::thread::scope`] (same structured-
//! concurrency guarantee: every spawned thread joins before `scope`
//! returns, so borrows of stack data are sound).
//!
//! API difference from real `crossbeam`: `std`'s closures receive
//! `&Scope` and `scope` returns the closure's value directly instead of a
//! `Result` (panics propagate on join, matching `crossbeam`'s `.unwrap()`
//! idiom at every call site in this workspace).

pub mod thread {
    //! Scoped threads.
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move || chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, 10);
    }
}
