#!/usr/bin/env bash
# Tier-1 verification: release build, full workspace test suite, and
# clippy with warnings promoted to errors. Run from the repo root.
#
# The container has no crates.io access; every external dependency is an
# API-subset shim under compat/, so --offline always works.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> no build artifacts tracked"
if git ls-files | grep -E '(^|/)target/' >/dev/null; then
    echo "error: build artifacts are tracked in git (git ls-files matches target/)." >&2
    echo "       Run: git rm -r --cached --quiet -- target" >&2
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test -q"
cargo test -q --offline --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo doc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps --quiet

# Second configuration: the deterministic fault-injection hook compiled
# in (disc_core::fault + the gated fault_tolerance tests).
echo "==> cargo test -q (--cfg disc_fault)"
RUSTFLAGS="--cfg disc_fault" cargo test -q --offline --workspace

echo "==> cargo clippy -- -D warnings (--cfg disc_fault)"
RUSTFLAGS="--cfg disc_fault" cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> ci.sh: all green"
