#!/usr/bin/env bash
# Tier-1 verification: release build, full workspace test suite, and
# clippy with warnings promoted to errors. Run from the repo root.
#
# The container has no crates.io access; every external dependency is an
# API-subset shim under compat/, so --offline always works.
#
# --heavy: after the standard gauntlet, re-run the workspace tests with
# PROPTEST_CASES=512 (the compat proptest shim rescales each block's
# case count proportionally, so 512 means 8x the default 64). Use before
# a release or when touching the distance kernels or index backends.
set -euo pipefail
cd "$(dirname "$0")/.."

HEAVY=0
for arg in "$@"; do
    case "$arg" in
    --heavy) HEAVY=1 ;;
    *)
        echo "usage: scripts/ci.sh [--heavy]" >&2
        exit 2
        ;;
    esac
done

echo "==> no build artifacts tracked"
if git ls-files | grep -E '(^|/)target/' >/dev/null; then
    echo "error: build artifacts are tracked in git (git ls-files matches target/)." >&2
    echo "       Run: git rm -r --cached --quiet -- target" >&2
    exit 1
fi
# Durable-store files are runtime state; a tracked one means a test or a
# CLI run leaked its store directory into the repo.
if git ls-files | grep -E '\.(wal|snap)$' >/dev/null; then
    echo "error: persistence artifacts are tracked in git (git ls-files matches *.wal / *.snap)." >&2
    echo "       Run: git rm --cached --quiet -- '*.wal' '*.snap'" >&2
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test -q"
cargo test -q --offline --workspace

# Second shard layout: every default-constructed engine in the suite is
# partitioned across 3 shards. Sharding is a pure execution knob, so the
# whole workspace must stay green with no other change.
echo "==> cargo test -q (DISC_TEST_SHARDS=3)"
DISC_TEST_SHARDS=3 cargo test -q --offline --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo doc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps --quiet

# Second configuration: the deterministic fault-injection hooks compiled
# in (disc_core::fault + the gated fault_tolerance tests, and
# disc_persist::fault + the gated IO-fault crash-recovery sweeps).
echo "==> cargo test -q (--cfg disc_fault)"
RUSTFLAGS="--cfg disc_fault" cargo test -q --offline --workspace

# The crash-recovery suite by name, so a test-filter or package rename
# that silently drops it from the workspace run fails loudly here.
echo "==> crash-recovery suite (--cfg disc_fault)"
RUSTFLAGS="--cfg disc_fault" cargo test -q --offline -p disc-persist \
    --test crash_equivalence --test wal_corruption

echo "==> cargo clippy -- -D warnings (--cfg disc_fault)"
RUSTFLAGS="--cfg disc_fault" cargo clippy --offline --workspace --all-targets -- -D warnings

# Examples double as end-to-end smoke tests: each asserts its own
# output, so a non-zero exit here is a real regression.
echo "==> examples smoke"
cargo run --release --offline -p disc --example quickstart >/dev/null
cargo run --release --offline -p disc --example record_matching >/dev/null

# Server smoke: a durable `disc serve` on an ephemeral port takes a
# concurrent burst from the bench load generator, shuts down on
# SIGTERM, and a recovery of its store must hold exactly the
# acknowledged rows — the no-acked-ingest-lost contract, end to end.
echo "==> disc serve smoke"
SMOKE_DIR=$(mktemp -d)
trap 'kill "$SERVE_PID" 2>/dev/null; rm -rf "$SMOKE_DIR"' EXIT
cargo build --release --offline --quiet -p disc -p disc-bench --bin disc --bin serve_load
target/release/disc serve --wal "$SMOKE_DIR/store" --eps 0.5 --eta 4 \
    --shards 2 --addr 127.0.0.1:0 --max-queue 32 >"$SMOKE_DIR/serve.out" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on //p' "$SMOKE_DIR/serve.out")
    [ -n "$ADDR" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || {
        echo "error: disc serve exited before listening:" >&2
        cat "$SMOKE_DIR/serve.out" >&2
        exit 1
    }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "error: disc serve never printed its address" >&2; exit 1; }
LOAD=$(target/release/serve_load --addr "$ADDR" --clients 6 --batches 10 --rows 4 --seed 11)
echo "    $LOAD"
ACKED_ROWS=$(printf '%s\n' "$LOAD" | sed -n 's/.*acked_rows=\([0-9]*\).*/\1/p')
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "error: disc serve exited non-zero after SIGTERM" >&2; exit 1; }
RECOVERED=$(target/release/disc recover --wal "$SMOKE_DIR/store" \
    | sed -n 's/^engine at generation [0-9]*: \([0-9]*\) rows.*/\1/p')
if [ "$RECOVERED" != "$ACKED_ROWS" ]; then
    echo "error: recovered $RECOVERED rows but clients got $ACKED_ROWS acked" >&2
    exit 1
fi
echo "    recovered $RECOVERED rows == acked $ACKED_ROWS (no acknowledged ingest lost)"
rm -rf "$SMOKE_DIR"
trap - EXIT

# Replication smoke: a leader and a read replica take a concurrent
# burst with mirrored reads (serve_load --follower fails on any
# divergent response and waits for the replica to apply every client's
# last ack), both are SIGTERM'd, and recovering *each* store must
# report the same acked rows — the replica is durable in its own right.
echo "==> replication smoke"
REPL_DIR=$(mktemp -d)
LEADER_PID=""
REPLICA_PID=""
trap 'kill ${LEADER_PID:-} ${REPLICA_PID:-} 2>/dev/null || true; rm -rf "$REPL_DIR"' EXIT
await_listen() { # OUT_FILE PID -> prints HOST:PORT
    local out=$1 pid=$2 addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^listening on //p' "$out")
        [ -n "$addr" ] && break
        kill -0 "$pid" 2>/dev/null || {
            echo "error: server exited before listening:" >&2
            cat "$out" >&2
            return 1
        }
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "error: server never printed its address" >&2; return 1; }
    printf '%s' "$addr"
}
target/release/disc serve --wal "$REPL_DIR/leader" --eps 0.5 --eta 4 \
    --shards 2 --snapshot-every 8 --addr 127.0.0.1:0 >"$REPL_DIR/leader.out" 2>&1 &
LEADER_PID=$!
LEADER_ADDR=$(await_listen "$REPL_DIR/leader.out" "$LEADER_PID")
target/release/disc serve --wal "$REPL_DIR/replica" --replicate-from "$LEADER_ADDR" \
    --addr 127.0.0.1:0 >"$REPL_DIR/replica.out" 2>&1 &
REPLICA_PID=$!
REPLICA_ADDR=$(await_listen "$REPL_DIR/replica.out" "$REPLICA_PID")
LOAD=$(target/release/serve_load --addr "$LEADER_ADDR" --follower "$REPLICA_ADDR" \
    --clients 6 --batches 10 --rows 4 --seed 23)
echo "    $LOAD"
ACKED_ROWS=$(printf '%s\n' "$LOAD" | sed -n 's/.*acked_rows=\([0-9]*\).*/\1/p')
target/release/disc repl-status --addr "$REPLICA_ADDR" | grep -q '"role":"follower"' \
    || { echo "error: replica repl-status did not report a follower role" >&2; exit 1; }
kill -TERM "$REPLICA_PID" "$LEADER_PID"
wait "$REPLICA_PID" || { echo "error: replica exited non-zero after SIGTERM" >&2; exit 1; }
wait "$LEADER_PID" || { echo "error: leader exited non-zero after SIGTERM" >&2; exit 1; }
LEADER_REC=$(target/release/disc recover --wal "$REPL_DIR/leader" | grep '^engine at generation')
REPLICA_REC=$(target/release/disc recover --wal "$REPL_DIR/replica" | grep '^engine at generation')
if [ "$LEADER_REC" != "$REPLICA_REC" ]; then
    echo "error: recovered states diverged:" >&2
    echo "  leader:  $LEADER_REC" >&2
    echo "  replica: $REPLICA_REC" >&2
    exit 1
fi
LEADER_ROWS=$(printf '%s\n' "$LEADER_REC" | sed -n 's/^engine at generation [0-9]*: \([0-9]*\) rows.*/\1/p')
if [ "$LEADER_ROWS" != "$ACKED_ROWS" ]; then
    echo "error: recovered $LEADER_ROWS rows but clients got $ACKED_ROWS acked" >&2
    exit 1
fi
echo "    leader and replica both recovered: $LEADER_REC ($ACKED_ROWS acked rows)"
rm -rf "$REPL_DIR"
trap - EXIT

if [ "$HEAVY" = 1 ]; then
    echo "==> cargo test -q (PROPTEST_CASES=512)"
    PROPTEST_CASES=512 cargo test -q --offline --workspace
fi

echo "==> ci.sh: all green"
